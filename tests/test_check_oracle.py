"""The unified serializability oracle (``repro.check.oracle``)."""

import pytest
from hypothesis import given, settings

from repro.check.oracle import (
    SerializabilityOracle,
    Verdict,
    ViewSerializabilityUnknown,
    conflict_graph,
    is_view_equivalent,
    ordered_item_pairs,
    precedence_pairs,
    reads_from,
    serial_reads_from,
)
from repro.classes import membership
from repro.core.mtk import MTkScheduler
from repro.model.log import Log
from tests.conftest import small_logs


@pytest.fixture
def oracle() -> SerializabilityOracle:
    return SerializabilityOracle()


class TestPrimitives:
    def test_ordered_item_pairs_conflicts_only(self):
        log = Log.parse("R1[x] R2[x] W3[x]")
        pairs = {
            (a.txn, b.txn) for a, b in ordered_item_pairs(log)
        }
        # read-read (1,2) is not a conflict; both reads precede the write.
        assert pairs == {(1, 3), (2, 3)}

    def test_ordered_item_pairs_with_read_read(self):
        log = Log.parse("R1[x] R2[x]")
        assert list(ordered_item_pairs(log)) == []
        with_rr = {
            (a.txn, b.txn)
            for a, b in ordered_item_pairs(log, include_read_read=True)
        }
        assert with_rr == {(1, 2)}

    def test_reads_from_initial(self):
        log = Log.parse("R1[x] W2[x] R3[x]")
        assert reads_from(log) == [(1, "x", 0), (3, "x", 2)]

    def test_serial_reads_from_reorders(self):
        log = Log.parse("W2[x] R1[x]")
        assert serial_reads_from(log, [1, 2]) == [(1, "x", 0)]
        assert serial_reads_from(log, [2, 1]) == [(1, "x", 2)]

    def test_view_equivalence_requires_same_operations(self):
        assert not is_view_equivalent(
            Log.parse("W1[x]"), Log.parse("W1[x] W2[x]")
        )
        assert is_view_equivalent(
            Log.parse("R1[x] W2[y]"), Log.parse("W2[y] R1[x]")
        )

    def test_precedence_pairs_two_step(self):
        # T1 finishes entirely before T2 begins -> real-time precedence.
        log = Log.parse("R1[x] W1[x] R2[y] W2[y]")
        assert (1, 2) in precedence_pairs(log)
        assert (2, 1) not in precedence_pairs(log)


class TestVerdicts:
    def test_dsr_short_circuits_to_yes(self, oracle):
        assert oracle.view_serializability(Log.parse("W1[x] R2[x]")) is (
            Verdict.YES
        )

    def test_non_dsr_sr_log(self, oracle):
        # The paper's SR-not-DSR witness.
        log = Log.parse("R1[x] W2[x] W1[x] W3[x]")
        assert not oracle.is_dsr(log)
        assert oracle.view_serializability(log) is Verdict.YES

    def test_unknown_beyond_bruteforce_bound(self):
        oracle = SerializabilityOracle(max_txns_for_bruteforce=2)
        log = Log.parse("R1[x] W2[x] W1[x] W3[x]")
        assert oracle.view_serializability(log) is Verdict.UNKNOWN

    def test_membership_raises_explicit_unknown(self):
        log = Log.parse("R1[x] W2[x] W1[x] W3[x]")
        with pytest.raises(ViewSerializabilityUnknown):
            membership.is_view_serializable(log, max_txns_for_bruteforce=2)
        # ... and the ValueError contract is preserved for old callers.
        with pytest.raises(ValueError):
            membership.is_view_serializable(log, max_txns_for_bruteforce=2)

    @given(small_logs())
    @settings(max_examples=150)
    def test_membership_delegates_to_oracle(self, log):
        oracle = SerializabilityOracle()
        assert membership.is_dsr(log) == oracle.is_dsr(log)
        assert membership.is_ssr(log) == oracle.is_ssr(log)

    @given(small_logs())
    @settings(max_examples=100)
    def test_conflict_graph_acyclicity_matches_is_dsr(self, log):
        assert membership.is_dsr(log) == (not conflict_graph(log).has_cycle())


class TestDefinition6Replay:
    def test_accepted_run_is_certified(self, oracle):
        log = Log.parse("W1[x] W1[y] R3[x] R2[y] W3[y]")  # Example 1
        replay = oracle.definition6_replay(log, 2)
        assert replay.accepted
        assert replay.certified

    def test_rejected_run_is_vacuously_certified(self, oracle):
        log = Log.parse("W1[x] W2[x] R3[y] W3[x]")  # Fig. 5
        replay = oracle.definition6_replay(log, 2)
        assert not replay.accepted
        assert replay.certified  # vacuous: nothing to certify

    def test_scheduler_reuse_matches_fresh(self, oracle):
        log = Log.parse("W1[x] W1[y] R3[x] R2[y] W3[y]")
        reused = MTkScheduler(2)
        a = oracle.definition6_replay(log, 2)
        b = oracle.definition6_replay(log, 2, scheduler=reused)
        assert (a.accepted, a.certified) == (b.accepted, b.certified)

    @given(small_logs(max_txns=3, max_ops=2))
    @settings(max_examples=150)
    def test_every_accepted_small_log_certifies(self, log):
        oracle = SerializabilityOracle()
        for k in (1, 2, 3):
            replay = oracle.definition6_replay(log, k)
            if replay.accepted:
                assert replay.certified, (str(log), k)


class TestReport:
    def test_report_flags_non_dsr(self, oracle):
        report = oracle.report(Log.parse("W1[x] W2[x] R1[x] R2[x]"))
        assert not report.ok
        assert report.violations

    def test_report_clean_log(self, oracle):
        report = oracle.report(Log.parse("W1[x] R2[x] W2[y]"))
        assert report.ok
        assert report.serial_order is not None
