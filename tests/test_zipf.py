"""Tests for the Zipf open-loop workload generator and its pipeline fit."""

from __future__ import annotations

import random

import pytest

from repro.engine.pipeline import TransactionService
from repro.workloads.zipf import (
    ZipfSpec,
    generate_zipf_workload,
    hot_set,
    zipf_cum_weights,
    zipf_item_names,
)

SMALL = ZipfSpec(num_txns=40, ops_per_txn=3, num_items=64, load=0.3)


class TestWeights:
    def test_weights_monotone_decreasing(self):
        cum = zipf_cum_weights(100, skew=1.1)
        gaps = [b - a for a, b in zip(cum, cum[1:])]
        assert all(g > 0 for g in gaps)
        assert all(a >= b for a, b in zip(gaps, gaps[1:]))

    def test_zero_skew_is_uniform(self):
        cum = zipf_cum_weights(10, skew=0.0)
        gaps = [b - a for a, b in zip([0.0] + cum, cum)]
        assert all(abs(g - 1.0) < 1e-12 for g in gaps)

    def test_item_names_in_popularity_order(self):
        assert zipf_item_names(3) == ["z0", "z1", "z2"]

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            zipf_cum_weights(0, skew=1.0)


class TestGeneration:
    def test_deterministic_from_seed(self):
        a = generate_zipf_workload(SMALL, random.Random(7))
        b = generate_zipf_workload(SMALL, random.Random(7))
        assert a == b

    def test_arrivals_nondecreasing_integer_ticks(self):
        txns, arrivals = generate_zipf_workload(SMALL, random.Random(1))
        ticks = [arrivals[t.txn_id] for t in txns]
        assert all(isinstance(t, int) and t >= 0 for t in ticks)
        assert ticks == sorted(ticks)
        assert set(arrivals) == {t.txn_id for t in txns}

    def test_skew_concentrates_on_hot_items(self):
        txns, _ = generate_zipf_workload(
            ZipfSpec(num_txns=400, num_items=256, skew=1.1), random.Random(2)
        )
        ops = [op for t in txns for op in t.operations]
        hot_share = sum(op.item == "z0" for op in ops) / len(ops)
        assert hot_share > 0.05  # rank 1 alone beats uniform 1/256 by far

    def test_write_ratio_extremes(self):
        all_reads, _ = generate_zipf_workload(
            ZipfSpec(num_txns=20, write_ratio=0.0), random.Random(3)
        )
        assert all(
            op.kind.is_read for t in all_reads for op in t.operations
        )
        all_writes, _ = generate_zipf_workload(
            ZipfSpec(num_txns=20, write_ratio=1.0), random.Random(3)
        )
        assert all(
            op.kind.is_write for t in all_writes for op in t.operations
        )

    def test_vary_length_bounds(self):
        txns, _ = generate_zipf_workload(
            ZipfSpec(num_txns=100, ops_per_txn=5, vary_length=True),
            random.Random(4),
        )
        lengths = {t.num_operations for t in txns}
        assert lengths <= set(range(1, 6))
        assert len(lengths) > 1

    def test_spec_validation(self):
        for bad in (
            dict(num_txns=0),
            dict(ops_per_txn=0),
            dict(num_items=0),
            dict(write_ratio=1.5),
            dict(skew=-0.1),
            dict(load=0.0),
        ):
            with pytest.raises(ValueError):
                ZipfSpec(**bad)


class TestHotSet:
    def test_prefix_covers_fraction(self):
        spec = ZipfSpec()
        hot = hot_set(spec, fraction=0.5)
        cum = zipf_cum_weights(spec.num_items, spec.skew)
        assert list(hot) == zipf_item_names(spec.num_items)[: len(hot)]
        assert cum[len(hot) - 1] >= 0.5 * cum[-1]
        if len(hot) > 1:
            assert cum[len(hot) - 2] < 0.5 * cum[-1]

    def test_default_spec_hot_set_is_tiny(self):
        assert len(hot_set(ZipfSpec())) < 50

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            hot_set(ZipfSpec(), fraction=0.0)


class TestOpenLoopPipeline:
    def test_open_loop_run_reports_latency_percentiles(self):
        txns, arrivals = generate_zipf_workload(SMALL, random.Random(5))
        service = TransactionService(
            k=3, n_shards=2, anti_starvation=True, parallel=0, window=8
        )
        try:
            service.submit_programs(txns)
            report = service.run(arrivals=arrivals)
            snap = service.stage_snapshot()
        finally:
            service.close()
        admission = snap["admission"]
        assert admission["open_loop"] == 1
        assert 0 <= admission["latency_p50"] <= admission["latency_p99"]
        assert admission["latency_p99"] <= admission["latency_max"]
        assert len(report.committed) + len(report.failed) == SMALL.num_txns

    def test_open_loop_inline_equals_process_workers(self):
        txns, arrivals = generate_zipf_workload(SMALL, random.Random(6))
        reports = []
        for parallel in (0, 2):
            service = TransactionService(
                k=3,
                n_shards=2,
                anti_starvation=True,
                parallel=parallel,
                window=8,
            )
            try:
                service.submit_programs(txns)
                reports.append(service.run(arrivals=arrivals))
            finally:
                service.close()
        inline, procs = reports
        assert inline.committed == procs.committed
        assert inline.failed == procs.failed
        assert inline.committed_ops == procs.committed_ops
