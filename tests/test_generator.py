"""Tests for the log generators and enumerators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.generator import (
    WorkloadSpec,
    all_interleavings,
    enumerate_small_logs,
    enumerate_two_step_systems,
    generate_transactions,
    interleave,
    random_log,
    random_logs,
)
from repro.model.operations import two_step


class TestWorkloadSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_txns": 0},
            {"ops_per_txn": 0},
            {"num_items": 0},
            {"write_ratio": 1.5},
            {"skew": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)


class TestRandomGeneration:
    def test_deterministic_from_seed(self):
        spec = WorkloadSpec(num_txns=4, ops_per_txn=3, num_items=5)
        a = list(random_logs(spec, 5, seed=42))
        b = list(random_logs(spec, 5, seed=42))
        assert a == b
        c = list(random_logs(spec, 5, seed=43))
        assert a != c

    def test_transaction_shape(self):
        spec = WorkloadSpec(num_txns=3, ops_per_txn=4, num_items=5)
        txns = generate_transactions(spec, random.Random(0))
        assert len(txns) == 3
        assert all(t.num_operations == 4 for t in txns)

    def test_two_step_model_flag(self):
        spec = WorkloadSpec(
            num_txns=4, ops_per_txn=4, num_items=5, two_step_model=True
        )
        log = random_log(spec, random.Random(1))
        assert log.is_two_step()

    def test_skew_concentrates_accesses(self):
        rng = random.Random(0)
        flat = WorkloadSpec(num_txns=20, ops_per_txn=5, num_items=20, skew=0.0)
        hot = WorkloadSpec(num_txns=20, ops_per_txn=5, num_items=20, skew=2.0)

        def top_share(spec):
            counts = {}
            for txn in generate_transactions(spec, random.Random(7)):
                for op in txn.operations:
                    counts[op.item] = counts.get(op.item, 0) + 1
            return max(counts.values()) / sum(counts.values())

        assert top_share(hot) > top_share(flat)

    def test_interleave_preserves_program_order(self):
        txns = [two_step(i, [f"r{i}"], [f"w{i}"]) for i in range(1, 4)]
        log = interleave(txns, random.Random(3))
        for txn in txns:
            subsequence = [op for op in log if op.txn == txn.txn_id]
            assert tuple(subsequence) == txn.operations

    def test_vary_length(self):
        spec = WorkloadSpec(
            num_txns=30, ops_per_txn=6, num_items=5, vary_length=True
        )
        lengths = {
            t.num_operations
            for t in generate_transactions(spec, random.Random(2))
        }
        assert len(lengths) > 1
        assert max(lengths) <= 6


class TestEnumeration:
    def test_all_interleavings_count(self):
        txns = [two_step(1, ["a"], ["a"]), two_step(2, ["b"], ["b"])]
        # C(4, 2) = 6 interleavings of two 2-op programs.
        assert len(list(all_interleavings(txns))) == 6

    def test_all_interleavings_unique(self):
        txns = [two_step(1, ["a"], ["a"]), two_step(2, ["a"], ["a"])]
        logs = list(all_interleavings(txns))
        assert len(logs) == len(set(logs))

    def test_two_step_system_count(self):
        # 2 items -> 4 (read, write) pairs per txn; 2 txns -> 16 systems.
        systems = list(enumerate_two_step_systems(2, ("a", "b")))
        assert len(systems) == 16

    def test_enumerate_small_logs_limit(self):
        logs = list(enumerate_small_logs(2, ("a", "b"), limit=10))
        assert len(logs) == 10
