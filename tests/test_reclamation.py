"""Tests for timestamp-table storage reclamation (III-D-6a/b)."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.mtk import MTkScheduler
from repro.engine.executor import TransactionExecutor
from repro.model.generator import WorkloadSpec, generate_transactions
from repro.model.operations import read, write


class TestReclaim:
    def test_committed_unreferenced_rows_are_freed(self):
        scheduler = MTkScheduler(2)
        scheduler.process(read(1, "x"))
        scheduler.process(write(1, "x"))
        scheduler.commit(1)
        # T1 is still RT(x)/WT(x): not reclaimable yet.
        assert scheduler.reclaim_committed() == 0
        scheduler.process(read(2, "x"))
        scheduler.process(write(2, "x"))
        scheduler.commit(2)
        # Now T2 supersedes T1 everywhere and T1's history entry is dead.
        assert scheduler.reclaim_committed() == 1
        assert 1 not in scheduler.table.known_txns()

    def test_uncommitted_rows_survive(self):
        scheduler = MTkScheduler(2)
        scheduler.process(read(1, "x"))
        assert scheduler.reclaim_committed() == 0
        assert 1 in scheduler.table.known_txns()

    def test_decisions_unchanged_after_reclaim(self):
        """Reclamation must be invisible to scheduling decisions."""
        ops = [
            read(1, "x"), write(1, "x"),
            read(2, "x"), write(2, "x"),
            read(3, "x"), write(3, "y"),
        ]
        plain = MTkScheduler(2)
        reclaiming = MTkScheduler(2)
        for index, op in enumerate(ops):
            d1 = plain.process(op)
            d2 = reclaiming.process(op)
            assert d1.status == d2.status
            if index == 3:
                for s in (plain, reclaiming):
                    s.commit(1)
                    s.commit(2)
                reclaiming.reclaim_committed()

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_reclaim_preserves_serializability(self, seed):
        """Executor workload with periodic reclamation stays serializable
        and the live table stays bounded by the active transactions."""
        spec = WorkloadSpec(num_txns=9, ops_per_txn=3, num_items=10)
        txns = generate_transactions(spec, random.Random(seed))
        scheduler = MTkScheduler(3, anti_starvation=True)
        executor = TransactionExecutor(scheduler, max_attempts=8)
        report = executor.execute(txns, seed=seed)
        assert report.is_serializable()
        before = scheduler.table_size
        scheduler.reclaim_committed()
        after = scheduler.table_size
        assert after <= before
        # Still-referenced rows: at most one reader + one writer per item,
        # plus any non-committed stragglers.
        assert after <= 2 * spec.num_items + len(report.failed)

    def test_long_run_table_stays_bounded(self):
        """III-D-6a: with 8-10 active transactions at a time, periodic
        reclamation keeps the table near the multiprogramming level even
        over a long stream of transactions."""
        scheduler = MTkScheduler(3)
        rng = random.Random(0)
        items = [f"x{i}" for i in range(6)]
        peak_after_reclaim = 0
        for batch in range(20):
            base = batch * 9
            for txn in range(base + 1, base + 10):
                for _ in range(3):
                    item = rng.choice(items)
                    op = (
                        read(txn, item)
                        if rng.random() < 0.6
                        else write(txn, item)
                    )
                    if txn in scheduler.aborted:
                        break
                    scheduler.process(op)
                if txn not in scheduler.aborted:
                    scheduler.commit(txn)
            scheduler.reclaim_committed(include_aborted=True)
            peak_after_reclaim = max(peak_after_reclaim, scheduler.table_size)
        # 180 transactions processed; the live table never exceeds a small
        # multiple of the per-batch population.
        assert peak_after_reclaim <= 30
