"""Version-chain invariants for the rebuilt MVMT(k) (PR 10).

Property suite over the multiversion storage/visibility split:

* chain ordering is *total* per item (writer vectors strictly ascend),
* ``read_source`` is stable — replaying the identical log after a
  ``reset()`` reproduces the oracle surface bit-for-bit (the PR-1
  ``reset()`` bug family, now for chains/indices),
* garbage collection never reclaims a version a live transaction can
  still see (resolutions before and after a collection agree),
* the executor's abort path leaves no aborted writer in any chain even
  under an abort storm (the ``prune_aborted`` hook), and
* the commit-dependency gate: dirty readers park, commit when their
  source commits, cascade when it rolls back.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.multiversion import MVMTkScheduler
from repro.core.mvcc import VisibilityEngine
from repro.core.table import VIRTUAL_TXN
from repro.model.generator import WorkloadSpec, generate_transactions, random_log
from repro.model.log import Log
from tests.conftest import small_logs


def _oracle_surface(scheduler: MVMTkScheduler, log: Log):
    accepted = scheduler.accepts(log)
    return (
        accepted,
        sorted(scheduler.reads_from()),
        {item: scheduler.version_chain(item) for item in log.items},
        {
            (txn, item): scheduler.read_source(txn, item)
            for txn in log.transactions
            for item in log.items
        },
    )


class TestChainTotalOrdering:
    @given(small_logs(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=200)
    def test_every_chain_is_totally_ordered(self, log, k):
        """The visibility engine's core invariant: installs only append,
        so writer vectors strictly ascend along every chain."""
        scheduler = MVMTkScheduler(k)
        scheduler.run(log, stop_on_reject=True)
        engine: VisibilityEngine = scheduler.visibility
        for chain in scheduler.chains().values():
            assert engine.chain_is_ordered(chain)

    @given(small_logs())
    @settings(max_examples=100)
    def test_commit_aware_walk_keeps_chains_ordered(self, log):
        """Same invariant with the pipeline's commit-aware oracle wired
        in (detour pins must not break the append-only discipline)."""
        scheduler = MVMTkScheduler(3, commit_aware=True)
        scheduler.run(log, stop_on_reject=True)
        for chain in scheduler.chains().values():
            assert scheduler.visibility.chain_is_ordered(chain)


class TestResetThenReplay:
    @given(small_logs(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=200)
    def test_replay_after_reset_is_identical(self, log, k):
        """Satellite: ``reset()`` must fully rebuild chains and indices —
        a stale chain or visibility table would shift decisions or the
        reads-from relation on the second run."""
        scheduler = MVMTkScheduler(k)
        first = _oracle_surface(scheduler, log)
        second = _oracle_surface(scheduler, log)  # accepts() resets first
        assert first == second

    def test_reset_rebinds_visibility_engine(self):
        """The engine must compare against the *current* table — holding
        the pre-reset oracle would replay the PR-1 reset bug family."""
        scheduler = MVMTkScheduler(2)
        before = scheduler.visibility
        scheduler.accepts(Log.parse("W1[x] R2[x]"))
        scheduler.reset()
        assert scheduler.visibility is not before
        assert scheduler.version_chain("x") == [VIRTUAL_TXN]


class TestGCVisibility:
    @given(small_logs(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=200)
    def test_collection_preserves_live_resolutions(self, log, commits):
        """GC never reclaims a version a live transaction could still
        read: with an arbitrary prefix of transactions committed, every
        active transaction resolves each item to the same version before
        and after ``collect_chain_garbage``."""
        scheduler = MVMTkScheduler(3)
        scheduler.run(log, stop_on_reject=True)
        txns = sorted(log.transactions)
        for txn in txns[:commits]:
            if txn not in scheduler.aborted:
                scheduler.commit(txn)
        # Aborted transactions are excluded: GC deliberately drops them
        # from the watermark's active set (their restart re-enters with a
        # fresh vector), so their stale resolutions may legally change.
        active = [
            t
            for t in txns[commits:]
            if t not in scheduler.aborted
        ]
        before = {
            (txn, item): resolution.source
            for txn in active
            for item, chain in scheduler.chains().items()
            for resolution in [scheduler.visibility.resolve_read(chain, txn)]
            if resolution is not None and not resolution.skip
        }
        scheduler.collect_chain_garbage()
        for (txn, item), source in before.items():
            resolution = scheduler.visibility.resolve_read(
                scheduler.chains()[item], txn
            )
            assert resolution is not None, (txn, item)
            assert resolution.source == source

    @given(small_logs())
    @settings(max_examples=100)
    def test_collection_keeps_chains_servable(self, log):
        """Even with everything committed, a collected chain still
        serves at least one version (the watermark survives)."""
        scheduler = MVMTkScheduler(3)
        scheduler.run(log, stop_on_reject=True)
        for txn in log.transactions:
            scheduler.commit(txn)
        scheduler.collect_chain_garbage()
        for item in log.items:
            assert len(scheduler.version_chain(item)) >= 1


class TestAbortStormPruning:
    def test_no_aborted_writer_lingers_after_storm(self):
        """Satellite: drive a write-heavy hot-set workload through the
        executor with a tight retry budget (an abort storm) and assert
        the ``prune_aborted`` hook left no aborted version behind — and
        that chains stay bounded by the committed-writer count."""
        from repro.engine.pipeline import PipelineExecutor

        spec = WorkloadSpec(
            num_txns=24, ops_per_txn=5, num_items=4, write_ratio=0.8,
            skew=1.2,
        )
        txns = generate_transactions(spec, random.Random(7))
        scheduler = MVMTkScheduler(3, commit_aware=True)
        executor = PipelineExecutor(scheduler, max_attempts=3)
        report = executor.execute(txns, seed=7)
        executor.close()
        assert report.restarts > 0  # the storm actually happened
        allowed = set(report.committed) | {VIRTUAL_TXN}
        for item, chain in scheduler.chains().items():
            writers = chain.writers()
            assert set(writers) <= allowed, (item, writers)
            assert len(writers) <= len(allowed)
            # Read records of failed transactions are pruned too.
            readers = {reader for reader, _ in chain.reads}
            assert readers <= allowed | set(report.committed)


class TestCommitDependencies:
    def _service(self):
        from repro.engine.pipeline.sessions import TransactionService

        return TransactionService(k=2, protocol="mvmt")

    def test_dirty_reader_parks_until_source_commits(self):
        """T1 reads T2's uncommitted version (T1 was already ordered
        above T2, so the commit-aware walk cannot detour) and finishes
        first: it must park, then commit after T2 does."""
        svc = self._service()
        log = Log.parse("W1[z] R2[z] W2[x] R1[x] R2[y]")
        svc.submit_programs(list(log.transactions.values()))
        report = svc.run(schedule=log)
        assert sorted(report.committed) == [1, 2]
        assert not report.failed
        assert svc.executor.stats.get("commit_parks", 0) >= 1

    def test_source_rollback_cascades_the_reader(self):
        """Extend the park scenario so the source's next write is
        rejected: the parked dirty reader must cascade-restart (not
        commit a read of a retracted version) and both must finish."""
        svc = self._service()
        log = Log.parse("W1[z] R2[z] W2[x] R1[x] W1[y] W2[y]")
        svc.submit_programs(list(log.transactions.values()))
        report = svc.run(schedule=log)
        assert sorted(report.committed) == [1, 2]
        assert svc.executor.stats.get("cascade_restarts", 0) >= 1
        # The final state is clean: every surviving read comes from a
        # committed writer or the initial version.
        committed = set(report.committed) | {VIRTUAL_TXN}
        for reader, _item, source in svc.scheduler.reads_from():
            assert source in committed

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_committed_reads_never_source_uncommitted(self, seed):
        """Recoverability, fuzzed: whatever the interleaving, a committed
        transaction's reads only come from committed sources (the park /
        cascade machinery closes the dirty-read window)."""
        spec = WorkloadSpec(
            num_txns=8, ops_per_txn=4, num_items=6, write_ratio=0.5
        )
        log = random_log(spec, random.Random(seed))
        svc = self._service()
        svc.submit_programs(list(log.transactions.values()))
        report = svc.run(schedule=log)
        committed = set(report.committed) | {VIRTUAL_TXN}
        for reader, _item, source in svc.scheduler.reads_from():
            if reader in committed:
                assert source in committed, (reader, source)
