"""Oracle tests for the undo log's dirty-overwrite chain repair.

MT(k) allows write-write interleavings before commit, so rollbacks can hit
values that were already overwritten.  The undo log repairs the
overwriter's before-image (re-parenting).  These tests drive random
write/commit/abort interleavings against a brute-force oracle that replays
only the committed writes in order.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.storage.database import Database
from repro.storage.wal import UndoLog


def oracle_final_state(events) -> dict:
    """The correct final state: replay only committed transactions'
    writes, in their original order."""
    committed = {
        txn for kind, txn, *_ in events if kind == "commit"
    }
    state: dict = {}
    for event in events:
        if event[0] == "write":
            _, txn, item, value = event
            if txn in committed:
                state[item] = value
    return state


_raw_events = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),  # txn
        st.sampled_from(["write", "write", "write", "commit", "abort"]),
        st.sampled_from(["x", "y"]),
    ),
    min_size=1,
    max_size=14,
)


@st.composite
def event_sequences(draw):
    """Random interleaved write/commit/abort sequences over few items.

    Raw draws are normalized: events after a transaction's first
    commit/abort are dropped, and transactions left open at the end are
    aborted (so the run always settles).
    """
    raw = draw(_raw_events)
    events = []
    finished: set[int] = set()
    seen: set[int] = set()
    counter = 0
    for txn, action, item in raw:
        if txn in finished:
            continue
        seen.add(txn)
        if action == "write":
            counter += 1
            events.append(("write", txn, item, f"T{txn}v{counter}"))
        else:
            events.append((action, txn))
            finished.add(txn)
    for txn in sorted(seen - finished):
        events.append(("abort", txn))
    return events


class TestChainRepair:
    @given(event_sequences())
    @settings(max_examples=400)
    def test_random_interleavings_match_oracle(self, events):
        db = Database()
        undo = UndoLog(db)
        for event in events:
            if event[0] == "write":
                _, txn, item, value = event
                before = db.write(item, value)
                undo.record_write(txn, item, before, after=value)
            elif event[0] == "commit":
                undo.commit(event[1])
            else:
                undo.rollback(event[1])
        assert db.snapshot() == oracle_final_state(events)

    def test_known_hard_chain(self):
        """T_a writes, T_b overwrites, T_a aborts first, then T_b aborts:
        naive before-images would resurrect T_a's dirty value."""
        db = Database()
        undo = UndoLog(db)
        undo.record_write(1, "x", db.write("x", "a1"), after="a1")
        undo.record_write(2, "x", db.write("x", "b1"), after="b1")
        undo.rollback(1)  # x still holds b1 (overwritten): skip + re-parent
        assert db.peek("x") == "b1"
        undo.rollback(2)  # restores T1's *before*, not T1's dirty value
        assert "x" not in db

    def test_commit_between_aborts(self):
        db = Database()
        undo = UndoLog(db)
        undo.record_write(1, "x", db.write("x", "a1"), after="a1")
        undo.record_write(2, "x", db.write("x", "b1"), after="b1")
        undo.commit(2)
        undo.rollback(1)  # T2's committed value must survive
        assert db.peek("x") == "b1"

    def test_three_writer_chain(self):
        db = Database()
        undo = UndoLog(db)
        for txn, value in ((1, "a"), (2, "b"), (3, "c")):
            undo.record_write(txn, "x", db.write("x", value), after=value)
        undo.rollback(2)  # middle writer aborts first
        assert db.peek("x") == "c"
        undo.rollback(3)
        assert db.peek("x") == "a"
        undo.rollback(1)
        assert "x" not in db
