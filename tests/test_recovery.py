"""Crash-recoverable data plane: durable logs, deterministic fault
injection, and the 2PC crash matrix.

The headline invariant (the ``recovery-equivalence`` fuzzer rule) is
pinned here deterministically: for any scripted fault plan — node
crashes at every 2PC phase boundary, dropped/duplicated/delayed
messages, torn coordinator WAL appends — the crashed-and-recovered
run's report is **bit-identical** to the fault-free run, and its
committed projection is DSR.  Bit-identity subsumes prefix consistency:
the committed projection of the recovered run *is* the fault-free one.

The exhaustive matrix (every node x every phase x both restart orders
x two windows, plus the TCP kill/restart paths) is ``-m slow`` so
tier-1 stays flat; a reduced phase sweep runs unmarked.  Frozen
counterexamples live in ``tests/corpus/recovery_*.json`` with drift
tests at the bottom.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.check.oracle import SerializabilityOracle
from repro.engine.pipeline import (
    Fault,
    FaultPlan,
    ParallelExecutionError,
    RecoverableShardSet,
    TransactionService,
    random_plan,
)
from repro.engine.pipeline.faults import (
    CRASH_PHASES,
    MESSAGE_FAULTS,
    MESSAGE_KINDS,
    POST_VOTE,
    PRE_COMMIT,
    PRE_PREPARE,
)
from repro.engine.pipeline.shard import ShardSpec
from repro.engine.pipeline.transport import roundtrip
from repro.storage.wal import DurableLog

from tests.test_parallel import make_workload, report_tuple

CORPUS_DIR = Path(__file__).parent / "corpus"
RECOVERY_CASES = sorted(CORPUS_DIR.glob("recovery_*.json"))


def run_recoverable(
    txns,
    log,
    *,
    n_shards=4,
    nodes=2,
    window=4,
    transport="loopback",
    fault_plan=None,
):
    """One windowed run over the recoverable plane via the service."""
    service = TransactionService(
        k=2,
        n_shards=n_shards,
        parallel=nodes,
        window=window,
        transport=transport,
        fault_plan=fault_plan,
    )
    try:
        service.submit_programs(txns)
        report = service.run(schedule=log)
        snapshot = service.stage_snapshot()
    finally:
        service.close()
    return report, snapshot


def run_plane(txns, log, plane, *, n_shards=4, window=4):
    """Run through a hand-built plane (for restart_order and other
    knobs the service does not expose) — the plane-swap idiom."""
    service = TransactionService(
        k=2, n_shards=n_shards, parallel=0, window=window
    )
    service.executor.parallel_plane.close()
    service.executor.parallel_plane = plane
    try:
        service.submit_programs(txns)
        report = service.run(schedule=log)
        snapshot = service.stage_snapshot()
    finally:
        service.close()
        plane.close()
    return report, snapshot


def baseline(txns, log, *, n_shards=4, window=4):
    service = TransactionService(
        k=2, n_shards=n_shards, parallel=0, window=window
    )
    try:
        service.submit_programs(txns)
        return service.run(schedule=log)
    finally:
        service.close()


_INVOLVEMENT_CACHE: dict[tuple, dict[int, list[int]]] = {}


def involvement(seed, *, n_shards=4, nodes=2, window=4):
    """``{node: [2PC window ids it participates in]}`` from a no-fault
    loopback run of ``make_workload(seed)``.

    Which nodes a window ships to depends on the row-conflict cut, so
    fault targets must be *discovered*, not hardcoded — a fault aimed
    at an uninvolved (node, window) pair is inert and the test would be
    vacuously green.  Window numbering is deterministic and identical
    across transports, so loopback-probed targets are valid for TCP
    runs too (single non-aborting faults never shift later ids)."""
    key = (seed, n_shards, nodes, window)
    if key in _INVOLVEMENT_CACHE:
        return _INVOLVEMENT_CACHE[key]
    from repro.engine.pipeline import recovery as _recovery

    seen: dict[int, list[int]] = {node: [] for node in range(nodes)}
    original = _recovery.RecoverableShardSet._prepare_round

    def spy(self, window_id, payloads):
        for node_id in payloads:
            seen[node_id].append(window_id)
        return original(self, window_id, payloads)

    _recovery.RecoverableShardSet._prepare_round = spy
    try:
        txns, log = make_workload(seed)
        run_recoverable(
            txns, log, n_shards=n_shards, nodes=nodes, window=window
        )
    finally:
        _recovery.RecoverableShardSet._prepare_round = original
    _INVOLVEMENT_CACHE[key] = seen
    return seen


# ----------------------------------------------------------------------
# DurableLog
# ----------------------------------------------------------------------
class TestDurableLog:
    def test_append_replay_round_trip(self, tmp_path):
        log = DurableLog(str(tmp_path / "node.wal"))
        log.append({"type": "begin"})
        log.append({"type": "prepared", "window": 0, "payload": [1, 2]})
        assert log.replay() == [
            {"type": "begin"},
            {"type": "prepared", "window": 0, "payload": [1, 2]},
        ]
        log.close()

    def test_torn_tail_is_ignored_on_replay(self, tmp_path):
        log = DurableLog(str(tmp_path / "node.wal"))
        log.append({"type": "begin"})
        log.append({"type": "commit", "window": 3})
        log.append_torn({"type": "commit", "window": 4})
        records = log.replay()
        assert records == [{"type": "begin"}, {"type": "commit", "window": 3}]
        log.close()

    def test_repair_truncates_torn_tail_durably(self, tmp_path):
        path = tmp_path / "node.wal"
        log = DurableLog(str(path))
        log.append({"type": "commit", "window": 1})
        log.append_torn({"type": "commit", "window": 2})
        assert log.repair() == [{"type": "commit", "window": 1}]
        # The torn bytes are gone from disk and appends work again.
        log.append({"type": "commit", "window": 3})
        log.close()
        reopened = DurableLog(str(path))
        assert reopened.replay() == [
            {"type": "commit", "window": 1},
            {"type": "commit", "window": 3},
        ]
        reopened.close()

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "node.wal"
        log = DurableLog(str(path))
        log.append({"type": "begin"})
        log.close()
        with path.open("a") as handle:
            handle.write("{not json\n")
            handle.write(json.dumps({"type": "commit", "window": 1}) + "\n")
        broken = DurableLog(str(path))
        with pytest.raises(ValueError, match="corrupt WAL record"):
            broken.replay()
        broken.close()

    def test_truncate_clears(self, tmp_path):
        log = DurableLog(str(tmp_path / "node.wal"))
        log.append({"type": "begin"})
        log.truncate()
        assert log.replay() == []
        log.append({"type": "begin"})
        assert log.replay() == [{"type": "begin"}]
        log.close()


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="crash phase"):
            Fault("crash", 0, node=0, phase="mid-flight")
        with pytest.raises(ValueError, match="target a node"):
            Fault("crash", 0, phase=PRE_PREPARE)
        with pytest.raises(ValueError, match="message kind"):
            Fault("drop", 0, node=0, phase="pre-prepare")
        with pytest.raises(ValueError, match="coordinator-side"):
            Fault("torn-wal", 0, node=1)
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("partition", 0)

    def test_dict_round_trip(self):
        plan = FaultPlan(
            [
                Fault("crash", 2, node=1, phase=POST_VOTE),
                Fault("drop", 0, node=0, phase="vote"),
                Fault("torn-wal", 3),
            ]
        )
        again = FaultPlan.from_dict(plan.to_dict())
        assert again.faults() == plan.faults()
        # and it survives an actual JSON round trip (corpus format)
        assert FaultPlan.from_dict(
            json.loads(json.dumps(plan.to_dict()))
        ).faults() == plan.faults()

    def test_consumption_is_one_shot_and_keyed(self):
        plan = FaultPlan(
            [
                Fault("crash", 1, node=0, phase=PRE_COMMIT),
                Fault("delay", 1, node=1, phase="vote"),
                Fault("torn-wal", 2),
            ]
        )
        # Non-matching consults do not consume.
        assert not plan.crash_at(0, 1, PRE_PREPARE)
        assert not plan.crash_at(1, 1, PRE_COMMIT)
        assert plan.message_fault(1, 0, "vote") is None
        assert not plan.torn_wal(1)
        assert plan.pending() == 3
        # Matching consults consume exactly once.
        assert plan.crash_at(0, 1, PRE_COMMIT)
        assert not plan.crash_at(0, 1, PRE_COMMIT)
        assert plan.message_fault(1, 1, "vote") == "delay"
        assert plan.message_fault(1, 1, "vote") is None
        assert plan.torn_wal(2)
        assert not plan.torn_wal(2)
        assert plan.pending() == 0
        assert not plan

    def test_random_plan_is_deterministic_and_in_range(self):
        import random as _random

        first = random_plan(_random.Random("seed"), windows=5, nodes=2)
        second = random_plan(_random.Random("seed"), windows=5, nodes=2)
        assert first.faults() == second.faults()
        for fault in first.faults():
            assert 0 <= fault.window < 5
            if fault.node is not None:
                assert 0 <= fault.node < 2
            if fault.kind == "crash":
                assert fault.phase in CRASH_PHASES
            elif fault.kind in MESSAGE_FAULTS:
                assert fault.phase in MESSAGE_KINDS


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
class TestWireCodec:
    def test_nested_tuples_survive_json(self):
        message = (
            "run",
            ((1, ("reset",)), (2, ("drop", 3))),
            ((0, ((5, "x"), (6, "y")), ((1, 2, 0, "x"),)),),
        )
        assert roundtrip(message) == message

    def test_dict_values_are_retupled(self):
        message = ("vote", 3, {"decisions": [[1, 0], [2, 2]]})
        got = roundtrip(message)
        assert got[2]["decisions"] == ((1, 0), (2, 2))


# ----------------------------------------------------------------------
# Loopback equivalence (no faults)
# ----------------------------------------------------------------------
class TestLoopbackEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_no_fault_bit_identical_to_inline(self, n_shards):
        for seed in (0, 3):
            txns, log = make_workload(seed)
            base = baseline(txns, log, n_shards=n_shards)
            got, snap = run_recoverable(txns, log, n_shards=n_shards)
            assert report_tuple(got) == report_tuple(base), f"seed {seed}"
            ipc = snap["parallel"]["ipc"]
            assert snap["parallel"]["transport"] == "loopback"
            assert ipc["rounds"] > 0
            assert ipc["prepares"] > 0
            assert ipc["window_aborts"] == 0
            assert ipc["node_restarts"] == 0

    def test_service_validates_transport_knobs(self):
        with pytest.raises(ValueError, match="transport"):
            TransactionService(k=2, n_shards=2, transport="carrier-pigeon")
        with pytest.raises(ValueError, match="parallel"):
            TransactionService(k=2, n_shards=2, transport="tcp")
        with pytest.raises(ValueError, match="fault injection"):
            TransactionService(
                k=2, n_shards=2, parallel=0, fault_plan=FaultPlan()
            )
        spec = ShardSpec(n_shards=2, k=2)
        with pytest.raises(ValueError, match="restart_order"):
            RecoverableShardSet(spec, restart_order="random")
        with pytest.raises(ValueError, match="max_window_attempts"):
            RecoverableShardSet(spec, max_window_attempts=0)


# ----------------------------------------------------------------------
# Scripted faults (loopback; the unmarked reduced sweep)
# ----------------------------------------------------------------------
class TestScriptedFaults:
    def check_plan(self, plan, *, seed=1, expect_consumed=True, **kwargs):
        """Fault run must bit-equal the fault-free run and stay DSR."""
        txns, log = make_workload(seed)
        base = baseline(txns, log, **kwargs)
        got, snap = run_recoverable(txns, log, fault_plan=plan, **kwargs)
        assert report_tuple(got) == report_tuple(base)
        assert SerializabilityOracle().is_dsr(got.committed_log)
        if expect_consumed:
            # Loopback shares the plan object: pending()==0 proves every
            # scripted fault actually fired (no vacuous green).
            assert plan.pending() == 0, plan.faults()
        return got, snap

    @pytest.mark.parametrize("phase", CRASH_PHASES)
    @pytest.mark.parametrize("node", (0, 1))
    def test_crash_each_phase_recovers_identically(self, phase, node):
        target = involvement(1)[node][0]
        plan = FaultPlan([Fault("crash", target, node=node, phase=phase)])
        _got, snap = self.check_plan(plan)
        ipc = snap["parallel"]["ipc"]
        assert ipc["node_restarts"] >= 1
        if phase == PRE_PREPARE:
            # No vote ever made it out: presumed abort, window retried.
            assert ipc["window_aborts"] >= 1
        if phase == PRE_COMMIT:
            # Prepared-but-undecided at restart: resolved from the WAL.
            assert ipc["resolved_windows"] >= 1

    @pytest.mark.parametrize("kind", MESSAGE_FAULTS)
    @pytest.mark.parametrize("message", MESSAGE_KINDS)
    def test_message_faults_recover_identically(self, kind, message):
        node, target = min(
            (
                (node, windows[0])
                for node, windows in involvement(1).items()
                if windows
            ),
            key=lambda pair: pair[1],
        )
        plan = FaultPlan([Fault(kind, target, node=node, phase=message)])
        # A duplicated vote is collapsed by the transport's last-reply
        # rule without consulting the plan — the fault is inert by
        # construction, so skip the consumption proof for it.
        consumed = not (kind == "duplicate" and message == "vote")
        self.check_plan(plan, expect_consumed=consumed)

    def test_torn_wal_presumes_abort_and_retries(self):
        plan = FaultPlan([Fault("torn-wal", 0)])
        _got, snap = self.check_plan(plan)
        ipc = snap["parallel"]["ipc"]
        assert ipc["window_aborts"] >= 1

    def test_compound_plan(self):
        inv = involvement(1)
        first0, first1 = inv[0][0], inv[1][0]
        # post-vote and pre-commit crashes commit their window, so they
        # never shift later window ids — the torn-wal target still
        # lands even though it is scripted after two crashes.
        plan = FaultPlan(
            [
                Fault("crash", first0, node=0, phase=POST_VOTE),
                Fault("crash", first1, node=1, phase=PRE_COMMIT),
                Fault("torn-wal", max(first0, first1) + 1),
            ]
        )
        _got, snap = self.check_plan(plan)
        ipc = snap["parallel"]["ipc"]
        assert ipc["node_restarts"] >= 2
        assert ipc["window_aborts"] >= 1

    def test_unsurvivable_plan_raises_not_hangs(self):
        """A plan that kills a window more often than the retry budget
        surfaces ParallelExecutionError instead of looping forever."""
        plan = FaultPlan(
            [
                Fault("crash", w, node=node, phase=PRE_PREPARE)
                for w in range(6)
                for node in (0, 1)
            ]
        )
        txns, log = make_workload(1)
        spec = ShardSpec(n_shards=4, k=2)
        plane = RecoverableShardSet(
            spec,
            workers=2,
            window=4,
            fault_plan=plan,
            max_window_attempts=3,
        )
        with pytest.raises(ParallelExecutionError, match="retry budget"):
            run_plane(txns, log, plane)


# ----------------------------------------------------------------------
# The full 2PC crash matrix (slow)
# ----------------------------------------------------------------------
def _matrix_cases():
    cases = []
    for phase in CRASH_PHASES:
        for node in (0, 1):
            for order in ("sorted", "reverse"):
                for hit in (0, 1):  # the node's 1st and 2nd 2PC windows
                    cases.append((phase, node, order, hit))
    return cases


@pytest.mark.slow
class TestCrashMatrix:
    @pytest.mark.parametrize(
        "phase,node,order,hit",
        _matrix_cases(),
        ids=lambda value: str(value),
    )
    def test_single_crash_matrix(self, phase, node, order, hit):
        txns, log = make_workload(1)
        base = baseline(txns, log)
        target = involvement(1)[node][hit]
        plan = FaultPlan([Fault("crash", target, node=node, phase=phase)])
        spec = ShardSpec(n_shards=4, k=2)
        plane = RecoverableShardSet(
            spec, workers=2, window=4, fault_plan=plan, restart_order=order
        )
        got, snap = run_plane(txns, log, plane)
        assert report_tuple(got) == report_tuple(base)
        assert SerializabilityOracle().is_dsr(got.committed_log)
        assert plan.pending() == 0, plan.faults()
        assert snap["parallel"]["ipc"]["node_restarts"] >= 1

    @pytest.mark.parametrize("window", (0, 1))
    def test_torn_wal_matrix(self, window):
        txns, log = make_workload(1)
        base = baseline(txns, log)
        plan = FaultPlan([Fault("torn-wal", window)])
        got, snap = run_recoverable(txns, log, fault_plan=plan)
        assert report_tuple(got) == report_tuple(base)
        assert plan.pending() == 0
        assert snap["parallel"]["ipc"]["window_aborts"] >= 1

    @pytest.mark.parametrize("order", ("sorted", "reverse"))
    def test_both_nodes_dead_restart_orders(self, order):
        """Two nodes dead in the same window: the heal loop revives
        them in the configured order; both orders must converge to the
        fault-free report."""
        txns, log = make_workload(1)
        base = baseline(txns, log)
        inv = involvement(1)
        shared = min(set(inv[0]) & set(inv[1]))  # both nodes in-window
        plan = FaultPlan(
            [
                Fault("crash", shared, node=0, phase=POST_VOTE),
                Fault("crash", shared, node=1, phase=PRE_COMMIT),
            ]
        )
        spec = ShardSpec(n_shards=4, k=2)
        plane = RecoverableShardSet(
            spec, workers=2, window=4, fault_plan=plan, restart_order=order
        )
        got, snap = run_plane(txns, log, plane)
        assert report_tuple(got) == report_tuple(base)
        assert plan.pending() == 0, plan.faults()
        assert snap["parallel"]["ipc"]["node_restarts"] >= 2


# ----------------------------------------------------------------------
# TCP transport (real processes, real sockets, real kill -9)
# ----------------------------------------------------------------------
class TestTcpTransport:
    def test_tcp_no_fault_bit_identical(self):
        txns, log = make_workload(2, num_txns=8)
        base = baseline(txns, log)
        got, snap = run_recoverable(txns, log, transport="tcp")
        assert report_tuple(got) == report_tuple(base)
        assert snap["parallel"]["transport"] == "tcp"

    @pytest.mark.slow
    @pytest.mark.parametrize("phase", CRASH_PHASES)
    def test_tcp_crash_kill_restart(self, phase):
        """Scripted crashes on TCP nodes are real process deaths
        (os._exit) followed by real restarts re-reading the on-disk
        log; the recovered run still bit-equals the fault-free run."""
        txns, log = make_workload(1)
        base = baseline(txns, log)
        target = involvement(1)[0][0]
        plan = FaultPlan([Fault("crash", target, node=0, phase=phase)])
        got, snap = run_recoverable(
            txns, log, transport="tcp", fault_plan=plan
        )
        assert report_tuple(got) == report_tuple(base)
        assert SerializabilityOracle().is_dsr(got.committed_log)
        assert snap["parallel"]["ipc"]["node_restarts"] >= 1

    @pytest.mark.slow
    def test_tcp_message_faults(self):
        txns, log = make_workload(1)
        base = baseline(txns, log)
        inv = involvement(1)
        node_a, win_a = min(
            ((node, windows[0]) for node, windows in inv.items()),
            key=lambda pair: pair[1],
        )
        node_b = 1 - node_a
        win_b = inv[node_b][0]
        # The dropped decide does not shift later window ids (the
        # window still commits), so the delayed vote target holds.
        plan = FaultPlan(
            [
                Fault("drop", win_a, node=node_a, phase="decide"),
                Fault("delay", win_b, node=node_b, phase="vote"),
            ]
        )
        got, snap = run_recoverable(
            txns, log, transport="tcp", fault_plan=plan
        )
        assert report_tuple(got) == report_tuple(base)
        # Message faults are coordinator-side: consumption is visible
        # on the local plan object even over TCP.
        assert plan.pending() == 0, plan.faults()
        assert snap["parallel"]["ipc"]["node_restarts"] >= 1


# ----------------------------------------------------------------------
# Frozen recovery corpus (drift tests)
# ----------------------------------------------------------------------
def _load_recovery_case(path: Path) -> dict:
    with path.open() as handle:
        return json.load(handle)


class TestRecoveryCorpus:
    def test_corpus_present(self):
        assert len(RECOVERY_CASES) >= 2

    @pytest.mark.parametrize(
        "path", RECOVERY_CASES, ids=lambda p: p.stem
    )
    def test_report_and_counters_are_frozen(self, path):
        from repro.model.log import Log

        case = _load_recovery_case(path)
        log = Log.parse(case["log"])
        txns = list(log.transactions.values())
        plan = FaultPlan.from_dict(case["plan"])
        got, snap = run_recoverable(
            txns,
            log,
            n_shards=case["n_shards"],
            nodes=case["nodes"],
            window=case["window"],
            fault_plan=plan,
        )
        expect = case["expect"]
        assert sorted(got.committed) == expect["committed"]
        assert sorted(got.failed) == expect["failed"]
        assert got.restarts == expect["restarts"]
        assert got.ops_executed == expect["ops_executed"]
        assert [str(op) for op in got.committed_ops] == expect[
            "committed_ops"
        ]
        ipc = snap["parallel"]["ipc"]
        for counter, want in expect["ipc"].items():
            assert ipc[counter] == want, counter
        assert plan.pending() == 0, "frozen plan no longer fires fully"

    @pytest.mark.parametrize(
        "path", RECOVERY_CASES, ids=lambda p: p.stem
    )
    def test_frozen_run_still_matches_fault_free(self, path):
        from repro.model.log import Log

        case = _load_recovery_case(path)
        log = Log.parse(case["log"])
        txns = list(log.transactions.values())
        base = baseline(
            txns, log, n_shards=case["n_shards"], window=case["window"]
        )
        got, _snap = run_recoverable(
            txns,
            log,
            n_shards=case["n_shards"],
            nodes=case["nodes"],
            window=case["window"],
            fault_plan=FaultPlan.from_dict(case["plan"]),
        )
        assert report_tuple(got) == report_tuple(base)
