"""Tests for the serializability-class membership procedures."""

from hypothesis import given, settings

from repro.classes.membership import (
    dsr_order,
    final_writers,
    is_dsr,
    is_ssr,
    is_view_equivalent,
    is_view_serializable,
    precedence_pairs,
    reads_from,
)
from repro.classes.to import (
    first_positions,
    is_to1_declarative,
    is_tok,
    saturation_dimension,
)
from repro.classes.two_pl import is_two_pl
from repro.model.log import Log
from repro.model.operations import two_step
from tests.conftest import small_logs, two_step_logs


class TestDSR:
    def test_example1_is_dsr(self, example1_log):
        assert is_dsr(example1_log)
        assert dsr_order(example1_log) == [1, 2, 3]

    def test_lost_update_is_not_dsr(self):
        assert not is_dsr(Log.parse("R1[x] R2[x] W1[x] W2[x]"))

    @given(small_logs())
    @settings(max_examples=200)
    def test_serial_logs_always_dsr(self, log):
        serial = Log.from_serial(
            [log.transactions[t] for t in sorted(log.txn_ids)]
        )
        assert is_dsr(serial)


class TestSSR:
    def test_precedence_pairs(self):
        log = Log.parse("R1[x] W1[x] R2[y] W2[y]")
        assert (1, 2) in precedence_pairs(log)
        assert (2, 1) not in precedence_pairs(log)

    def test_to3_not_ssr_log(self):
        """The canonical log showing TO(3) sticks out of SSR: T2 completes
        before T3 starts, but serialization needs T3 before T1 before T2."""
        log = Log.parse("R1[x] W2[x] R3[y] W1[y]")
        assert is_dsr(log)
        assert not is_ssr(log)
        assert is_tok(log, 3)

    def test_ssr_implies_dsr(self, random_stream):
        for log in random_stream(200, seed=2):
            if is_ssr(log):
                assert is_dsr(log)


class TestViewSerializability:
    def test_reads_from_tracks_writers(self):
        log = Log.parse("W1[x] R2[x] W3[x] R2[x]")
        assert reads_from(log) == [(2, "x", 1), (2, "x", 3)]

    def test_reads_from_initial(self):
        assert reads_from(Log.parse("R1[x]")) == [(1, "x", 0)]

    def test_final_writers(self):
        log = Log.parse("W1[x] W2[x] W1[y]")
        assert final_writers(log) == {"x": 2, "y": 1}

    def test_blind_write_log_is_sr_not_dsr(self):
        log = Log.parse("R1[x] W2[x] W1[x] W3[x]")
        assert not is_dsr(log)
        assert is_view_serializable(log)

    def test_lost_update_not_sr(self):
        assert not is_view_serializable(Log.parse("R1[x] R2[x] W1[x] W2[x]"))

    def test_view_equivalence_requires_same_operations(self):
        assert not is_view_equivalent(Log.parse("R1[x]"), Log.parse("W1[x]"))

    @given(small_logs(max_txns=3, max_ops=2))
    @settings(max_examples=150)
    def test_dsr_implies_sr(self, log):
        if is_dsr(log):
            assert is_view_serializable(log)


class TestTwoPL:
    def test_serial_log_is_two_pl(self):
        assert is_two_pl(Log.parse("R1[x] W1[x] R2[x] W2[x]"))

    def test_example1_is_two_pl(self, example1_log):
        assert is_two_pl(example1_log)

    def test_interleaved_conflicting_accesses_rejected(self):
        # T1 accesses x both before and after T2's write: no lock intervals
        # can realize this order.
        assert not is_two_pl(Log.parse("R1[x] W2[x] W1[x]"))

    def test_lock_point_conflict_rejected(self):
        # Region 5-style log: three readers of a then diverging writes
        # force lock points no assignment satisfies.
        log = Log.parse("R2[a] R3[a] R1[a] W1[a] W2[b] W3[b]")
        assert not is_two_pl(log)

    @given(two_step_logs())
    @settings(max_examples=300)
    def test_two_pl_implies_dsr_and_ssr(self, log):
        if is_two_pl(log):
            assert is_dsr(log)
            assert is_ssr(log)

    def test_empty_log(self):
        assert is_two_pl(Log(()))


class TestTOClasses:
    def test_first_positions(self):
        log = Log.parse("R2[x] R1[y] W2[x]")
        assert first_positions(log) == {2: 1, 1: 2}

    def test_example1_not_to1(self, example1_log):
        """The paper's point: conventional single-valued timestamps lose
        Example 1."""
        assert not is_to1_declarative(example1_log)
        assert not is_tok(example1_log, 1)
        assert is_tok(example1_log, 2)

    def test_starvation_log_is_to1_not_to3(self, starvation_log):
        """Fig. 5's log lands in TO(1) - TO(3): the classes really are
        incomparable (Section III-C)."""
        assert is_tok(starvation_log, 1)
        assert not is_tok(starvation_log, 3)

    @given(two_step_logs())
    @settings(max_examples=300)
    def test_declarative_and_operational_to1_agree(self, log):
        """On the single-read/single-write family, Definition 4 and MT(1)
        recognize the same logs."""
        assert is_to1_declarative(log) == is_tok(log, 1)

    @given(small_logs())
    @settings(max_examples=200)
    def test_tok_implies_dsr(self, log):
        for k in (1, 2, 3):
            if is_tok(log, k):
                assert is_dsr(log)

    def test_saturation_dimension(self):
        assert saturation_dimension(Log.parse("R1[x] W1[y]")) == 3
        assert saturation_dimension(Log.parse("R1[x] R1[y] W1[z]")) == 5
