"""Tests for MT(k1, k2) and the hierarchical generalization (Section V-A)."""

import pytest
from hypothesis import given, settings

from repro.classes.membership import is_dsr
from repro.core.mtk import MTkScheduler
from repro.core.nested import (
    HierarchicalScheduler,
    NestedScheduler,
    groups_by_read_write_sets,
    groups_by_site,
    single_level,
)
from repro.model.log import Log
from repro.model.operations import read, two_step, write
from repro.workloads.nested_wl import TABLE_IV_TYPES, typed_transactions
from tests.conftest import small_logs


EXAMPLE4_LOG = Log.parse("W1[x] R2[y] R2[x] W3[y]")
EXAMPLE4_GROUPS = {1: 1, 2: 1, 3: 2}


class TestExample4:
    """Example 4 / Fig. 12 / Table III."""

    def test_accepted(self):
        scheduler = NestedScheduler(2, 2, EXAMPLE4_GROUPS)
        assert scheduler.accepts(EXAMPLE4_LOG)

    def test_table_three_vectors(self):
        scheduler = NestedScheduler(2, 2, EXAMPLE4_GROUPS)
        scheduler.run(EXAMPLE4_LOG)
        gs = scheduler.group_snapshot()
        assert gs[0] == (0, None)
        assert gs[1] == (1, None)  # edge a: G0 -> G1
        assert gs[2] == (2, None)  # edge d: G1 -> G2
        ts = scheduler.tables[0]
        assert ts.vector(1).snapshot() == (1, None)  # edge c: T1 -> T2
        assert ts.vector(2).snapshot() == (2, None)
        assert ts.vector(3).is_fresh()  # T3 only has group-level deps

    def test_redundant_group_dependency_not_reencoded(self):
        """Edge b (G0 -> G1 again) must not change any vector."""
        scheduler = NestedScheduler(2, 2, EXAMPLE4_GROUPS)
        scheduler.reset()
        for op in EXAMPLE4_LOG.operations[:2]:
            scheduler.process(op)
        assert scheduler.stats["group_level_encodings"] == 1

    def test_antisymmetry_of_group_dependency(self):
        """A future T3 -> T2 dependency implies G2 -> G1 and is refused."""
        scheduler = NestedScheduler(2, 2, EXAMPLE4_GROUPS)
        scheduler.run(EXAMPLE4_LOG)
        assert scheduler.process(write(3, "q")).accepted
        assert not scheduler.process(read(2, "q")).accepted


class TestReductions:
    @given(small_logs())
    @settings(max_examples=200)
    def test_singleton_groups_reduce_to_mtk(self, log):
        """Every transaction its own group: MT(k, k) == MT(k) exactly."""
        groups = {txn: txn for txn in range(1, 6)}
        nested = NestedScheduler(3, 3, groups)
        flat = MTkScheduler(3, read_rule="none")
        assert nested.accepts(log) == flat.accepts(log)

    @given(small_logs())
    @settings(max_examples=200)
    def test_one_group_is_sound(self, log):
        groups = {txn: 1 for txn in range(1, 6)}
        if NestedScheduler(3, 3, groups).accepts(log):
            assert is_dsr(log)

    @given(small_logs())
    @settings(max_examples=150)
    def test_grouped_acceptance_is_sound(self, log):
        groups = {txn: (txn % 2) + 1 for txn in range(1, 6)}
        if NestedScheduler(2, 2, groups).accepts(log):
            assert is_dsr(log)


class TestHierarchical:
    def test_three_level_hierarchy(self):
        # Transactions 1, 2 in group 1; 3 in group 2; groups 1, 2 under
        # supergroup 1.
        paths = {1: (1, 1), 2: (1, 1), 3: (2, 1)}
        scheduler = HierarchicalScheduler(
            (2, 2, 2), lambda t: paths[t]
        )
        assert scheduler.accepts(EXAMPLE4_LOG)
        # Cross-group dependency within the same supergroup is encoded at
        # level 1 (the highest differing level).
        assert scheduler.stats["group_level_encodings"] >= 1

    def test_path_length_validation(self):
        scheduler = HierarchicalScheduler((2, 2), lambda t: (1, 2))
        with pytest.raises(ValueError):
            scheduler.process(read(1, "x"))

    def test_ks_validation(self):
        with pytest.raises(ValueError):
            HierarchicalScheduler((), lambda t: ())
        with pytest.raises(ValueError):
            HierarchicalScheduler((2, 0), lambda t: (1,))

    def test_restart(self):
        scheduler = NestedScheduler(2, 2, EXAMPLE4_GROUPS)
        scheduler.run(EXAMPLE4_LOG)
        scheduler.process(write(3, "q"))
        assert not scheduler.process(read(2, "q")).accepted
        scheduler.restart(2)
        assert 2 not in scheduler.aborted
        with pytest.raises(ValueError):
            scheduler.restart(2)


class TestPartitionRules:
    def test_groups_by_read_write_sets_table_iv(self):
        """Example 6 / Table IV: identical shapes share a group."""
        txns, _ = typed_transactions(TABLE_IV_TYPES, 6, __import__("random").Random(0))
        groups = groups_by_read_write_sets(txns)
        shapes = {}
        for txn in txns:
            shape = (txn.read_set, txn.write_set)
            shapes.setdefault(shape, set()).add(groups[txn.txn_id])
        # Same shape -> same group; different shapes -> different groups.
        assert all(len(g) == 1 for g in shapes.values())
        assert len({next(iter(g)) for g in shapes.values()}) == len(shapes)

    def test_table_iv_shapes(self):
        g1 = two_step(1, ["x", "z"], ["y", "z"])
        g2 = two_step(2, ["y", "w"], ["x", "w"])
        groups = groups_by_read_write_sets([g1, g2])
        assert groups == {1: 1, 2: 2}

    def test_groups_by_site_reserves_group_zero(self):
        groups = groups_by_site({1: 0, 2: 2})
        assert groups == {1: 1, 2: 3}
        assert 0 not in groups.values()
