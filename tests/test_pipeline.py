"""Tests for the staged pipeline: sessions, admission, shards, parity."""

import json
import os
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mtk import MTkScheduler
from repro.engine.executor import TransactionExecutor
from repro.engine.pipeline import (
    AdmissionQueue,
    CappedBackoff,
    GlobalRestart,
    ImmediateRetry,
    PipelineExecutor,
    Session,
    SessionError,
    ShardRouter,
    ShardSet,
    ShardSpec,
    TransactionService,
    resolve_policy,
    stable_hash,
)
from repro.model.generator import WorkloadSpec, generate_transactions
from repro.model.log import Log
from repro.model.operations import two_step


def _workload(seed, **overrides):
    kwargs = dict(num_txns=8, ops_per_txn=4, num_items=6, write_ratio=0.5)
    kwargs.update(overrides)
    return generate_transactions(WorkloadSpec(**kwargs), random.Random(seed))


def _report_tuple(report):
    """Every deterministic field of an ExecutionReport, comparable."""
    return (
        sorted(report.committed),
        sorted(report.failed),
        report.restarts,
        report.ops_executed,
        report.ops_reexecuted,
        report.ignored_writes,
        report.undo_count,
        tuple(report.committed_ops),
    )


class TestLegacyParity:
    """TransactionExecutor (the thin subclass) must be bit-for-bit the
    monolithic executor it replaced, and the n_shards=1 service must be
    bit-for-bit the TransactionExecutor."""

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_service_one_shard_equals_legacy(self, seed):
        txns = _workload(seed)
        legacy = TransactionExecutor(MTkScheduler(2)).execute(txns, seed=seed)
        service = TransactionService(k=2, n_shards=1)
        service.submit_programs(txns)
        report = service.run(seed=seed)
        assert _report_tuple(report) == _report_tuple(legacy)

    def test_executor_is_pipeline_subclass_with_plain_queue(self):
        executor = TransactionExecutor(MTkScheduler(2))
        assert isinstance(executor, PipelineExecutor)
        assert executor._admission.is_plain

    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_explicit_immediate_policy_changes_nothing(self, seed):
        """Naming the legacy policy explicitly keeps the fast lane."""
        txns = _workload(seed)
        legacy = TransactionExecutor(MTkScheduler(2)).execute(txns, seed=seed)
        piped = PipelineExecutor(
            MTkScheduler(2), retry_policy="immediate"
        ).execute(txns, seed=seed)
        assert _report_tuple(piped) == _report_tuple(legacy)


class TestDeterminism:
    """Same seed => identical report, in-process and across processes."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"retry_policy": "capped-backoff"},
            {"batch_size": 3, "queue_capacity": 8},
            {
                "retry_policy": "capped-backoff",
                "batch_size": 4,
                "queue_capacity": 12,
                "shuffle_batches": True,
            },
        ],
        ids=["plain", "backoff", "batched", "staged-shuffled"],
    )
    def test_same_seed_same_report(self, kwargs):
        txns = _workload(11)
        runs = [
            PipelineExecutor(MTkScheduler(2), **kwargs).execute(txns, seed=11)
            for _ in range(2)
        ]
        assert _report_tuple(runs[0]) == _report_tuple(runs[1])

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_sharded_service_deterministic(self, n_shards):
        txns = _workload(5)
        tuples = []
        for _ in range(2):
            service = TransactionService(k=3, n_shards=n_shards)
            service.submit_programs(txns)
            tuples.append(_report_tuple(service.run(seed=5)))
        assert tuples[0] == tuples[1]

    def test_shard_routing_survives_hash_randomization(self):
        """crc32 routing must agree across interpreters with different
        PYTHONHASHSEED values (builtin hash(str) would not)."""
        script = (
            "from repro.engine.pipeline import ShardRouter\n"
            "r = ShardRouter(4)\n"
            "items = [f'item{i}' for i in range(32)]\n"
            "print([r.shard_of_item(i) for i in items])\n"
        )
        outputs = set()
        for hashseed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hashseed
            env["PYTHONPATH"] = "src"
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1

    def test_bench_cell_identical_across_processes(self):
        """A sharded bench cell's counters are identical when computed in
        two different worker processes (the --jobs 1 vs --jobs 4 claim)."""
        script = (
            "import json\n"
            "from repro.obs.bench import run_seed\n"
            "cell = run_seed('mt3_shard2', 0)\n"
            "cell.pop('wall_s')\n"
            "print(json.dumps(cell, sort_keys=True))\n"
        )
        outputs = set()
        for hashseed in ("3", "4"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hashseed
            env["PYTHONPATH"] = "src"
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1


class TestShardRouter:
    def test_stable_hash_is_crc32(self):
        import zlib

        assert stable_hash("x") == zlib.crc32(b"x")

    def test_routing_is_total_and_stable(self):
        router = ShardRouter(3)
        for item in ("x", "y", "z", "item17"):
            shard = router.shard_of_item(item)
            assert 0 <= shard < 3
            assert router.shard_of_item(item) == shard  # cached path

    def test_custom_functions(self):
        router = ShardRouter(2, item_fn=len, txn_fn=lambda t: t + 1)
        assert router.shard_of_item("ab") == 0
        assert router.shard_of_item("abc") == 1
        assert router.shard_of_txn(1) == 0

    def test_placement_partitions_items(self):
        router = ShardRouter(4)
        items = [f"i{n}" for n in range(40)]
        groups = router.placement(items)
        assert sorted(sum(groups.values(), [])) == sorted(items)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestShardSet:
    def test_one_shard_builds_flat_mtk(self):
        shard_set = ShardSet(ShardSpec(n_shards=1, k=3))
        assert type(shard_set.scheduler) is MTkScheduler

    def test_many_shards_build_dmt(self):
        from repro.core.distributed import DMTkScheduler

        shard_set = ShardSet(ShardSpec(n_shards=4, k=2))
        assert isinstance(shard_set.scheduler, DMTkScheduler)

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_sharded_runs_stay_serializable(self, n_shards, seed):
        txns = _workload(seed, num_txns=10)
        service = TransactionService(k=2, n_shards=n_shards)
        service.submit_programs(txns)
        report = service.run(seed=seed)
        assert report.is_serializable()
        assert not report.committed & report.failed

    def test_occupancy_sums_to_one(self):
        txns = _workload(2, num_items=12)
        service = TransactionService(k=2, n_shards=3)
        service.submit_programs(txns)
        service.run(seed=2)
        occupancy = service.shards.occupancy()
        assert len(occupancy) == 3
        assert abs(sum(occupancy) - 1.0) < 1e-9

    def test_snapshot_accounts_every_processed_op(self):
        txns = _workload(4)
        service = TransactionService(k=2, n_shards=2)
        service.submit_programs(txns)
        service.run(seed=4)
        rows = service.shards.snapshot()
        total = sum(row["ops"] for row in rows)
        decisions = sum(
            service.scheduler.stats.get(key, 0)
            for key in ("accepted", "rejected", "ignored")
        )
        assert total == decisions

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ShardSpec(n_shards=0)
        with pytest.raises(ValueError):
            ShardSpec(k=0)
        with pytest.raises(ValueError):
            ShardSet(ShardSpec(n_shards=2), router=ShardRouter(3))

    def test_executor_rejects_foreign_shard_scheduler(self):
        shard_set = ShardSet(ShardSpec(n_shards=2))
        with pytest.raises(ValueError):
            PipelineExecutor(MTkScheduler(2), shards=shard_set)


class TestRetryPolicies:
    def test_resolve_by_name_and_instance(self):
        assert isinstance(resolve_policy(None), ImmediateRetry)
        assert isinstance(resolve_policy("capped-backoff"), CappedBackoff)
        policy = GlobalRestart()
        assert resolve_policy(policy) is policy
        with pytest.raises(ValueError):
            resolve_policy("nope")

    def test_backoff_delay_schedule(self):
        policy = CappedBackoff(base=1, factor=2, cap=8)
        assert [policy.delay(1, a) for a in range(1, 7)] == [1, 2, 4, 8, 8, 8]
        with pytest.raises(ValueError):
            CappedBackoff(base=-1)

    @given(st.integers(min_value=0, max_value=15))
    @settings(max_examples=15, deadline=None)
    def test_backoff_commits_same_set_serializably(self, seed):
        """Backoff changes retry timing, never correctness."""
        txns = _workload(seed)
        report = PipelineExecutor(
            MTkScheduler(2), retry_policy=CappedBackoff()
        ).execute(txns, seed=seed)
        assert report.is_serializable()
        assert not report.committed & report.failed

    @given(st.integers(min_value=0, max_value=15))
    @settings(max_examples=15, deadline=None)
    def test_global_restart_policy_serializable(self, seed):
        txns = _workload(seed, num_txns=6)
        executor = PipelineExecutor(
            MTkScheduler(1), retry_policy="global-restart", max_attempts=6
        )
        report = executor.execute(txns, seed=seed)
        assert report.is_serializable()
        # every abort escalated: no plain per-transaction retries remain
        if report.restarts:
            assert executor.stats["global_restarts"] > 0


class TestAdmissionQueue:
    def test_plain_detection(self):
        assert AdmissionQueue().is_plain
        assert not AdmissionQueue(capacity=4).is_plain
        assert not AdmissionQueue(batch_size=2).is_plain
        assert not AdmissionQueue(retry_policy="capped-backoff").is_plain

    def test_backing_list_guard(self):
        queue = AdmissionQueue(batch_size=2)
        with pytest.raises(RuntimeError):
            queue.backing_list()

    def test_batched_release_order_preserved(self):
        queue = AdmissionQueue(batch_size=2)
        queue.begin([1, 2, 3, 4, 5])
        assert [queue.pop() for _ in range(5)] == [1, 2, 3, 4, 5]
        assert queue.pop() is None
        assert queue.snapshot()["batches"] == 3

    def test_capacity_counts_waits(self):
        queue = AdmissionQueue(capacity=2)
        queue.begin([1, 2, 3, 4])
        drained = []
        while (txn := queue.pop()) is not None:
            drained.append(txn)
        assert drained == [1, 2, 3, 4]
        assert queue.snapshot()["waits"] >= 1
        assert queue.snapshot()["max_queue_depth"] <= 2

    def test_delayed_retry_matures_in_simulated_time(self):
        queue = AdmissionQueue(retry_policy=CappedBackoff(base=2))
        queue.begin([1, 2, 3])
        assert queue.pop() == 1
        queue.requeue(9, count=2, attempt=1)  # ready at tick 1 + 2 = 3
        assert queue.pop() == 2  # tick 2
        assert queue.pop() == 3  # tick 3
        assert queue.pop() == 9  # matured
        assert queue.pop() == 9
        assert queue.pop() is None
        assert queue.snapshot()["delayed_retries"] == 1

    def test_drained_queue_jumps_to_earliest_delayed(self):
        queue = AdmissionQueue(retry_policy=CappedBackoff(base=5, cap=16))
        queue.begin([1])
        assert queue.pop() == 1
        queue.requeue(7, count=1, attempt=1)
        assert queue.pop() == 7  # clock jumps, no livelock
        assert queue.pop() is None

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ValueError):
            AdmissionQueue(batch_size=0)


class TestSessions:
    def test_context_manager_commits(self):
        service = TransactionService(k=2)
        with service.open() as session:
            session.read("x").write("y")
        assert session.closed
        assert len(service.pending) == 1
        report = service.run(seed=0)
        assert service.outcome(session.txn_id) == "committed"
        assert report.is_serializable()

    def test_exception_abandons(self):
        service = TransactionService(k=2)
        with pytest.raises(RuntimeError):
            with service.open() as session:
                session.write("x")
                raise RuntimeError("client crashed")
        assert session.closed
        assert service.pending == ()

    def test_closed_session_rejects_operations(self):
        service = TransactionService(k=2)
        session = service.open()
        session.write("x")
        session.commit()
        with pytest.raises(SessionError):
            session.read("y")
        with pytest.raises(SessionError):
            session.commit()

    def test_empty_commit_rejected(self):
        service = TransactionService(k=2)
        with pytest.raises(SessionError):
            service.open().commit()

    def test_duplicate_ids_rejected(self):
        service = TransactionService(k=2)
        service.open(txn_id=7).write("x").commit()
        with pytest.raises(SessionError):
            service.open(txn_id=7)

    def test_run_requires_work_and_consumes_it(self):
        service = TransactionService(k=2)
        with pytest.raises(SessionError):
            service.run()
        service.open().write("x").commit()
        service.run(seed=0)
        with pytest.raises(SessionError):
            service.run()  # consumed

    def test_explicit_schedule(self):
        service = TransactionService(k=2)
        service.submit_programs(
            [two_step(1, ["x"], ["y"]), two_step(2, ["y"], ["x"])]
        )
        report = service.run(schedule=Log.parse("R1[x] R2[y] W1[y] W2[x]"))
        assert report.is_serializable()

    def test_stage_snapshot_shape(self):
        service = TransactionService(
            k=2, n_shards=2, retry_policy="capped-backoff", batch_size=2
        )
        service.submit_programs(_workload(1))
        service.run(seed=1)
        snapshot = service.stage_snapshot()
        assert snapshot["admission"]["policy"] == "capped-backoff"
        assert len(snapshot["shards"]) == 2
        assert len(snapshot["shard_occupancy"]) == 2
        assert json.dumps(snapshot)  # JSON-serializable


class TestStagedLaneCorrectness:
    """The staged lane must preserve the executor's invariants."""

    @given(st.integers(min_value=0, max_value=25))
    @settings(max_examples=25, deadline=None)
    def test_accounting_invariant(self, seed):
        """Everything executed either survives in committed_ops or was
        counted as re-executed work."""
        txns = _workload(seed)
        report = PipelineExecutor(
            MTkScheduler(2),
            retry_policy="capped-backoff",
            batch_size=3,
            queue_capacity=10,
        ).execute(txns, seed=seed)
        assert len(report.committed_ops) == (
            report.ops_executed - report.ops_reexecuted
        )

    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_staged_commits_serializable_with_partial_rollback(self, seed):
        txns = _workload(seed, num_txns=6)
        report = PipelineExecutor(
            MTkScheduler(3, partial_rollback=True),
            rollback="partial",
            retry_policy="capped-backoff",
            batch_size=4,
        ).execute(txns, seed=seed)
        assert report.is_serializable()

    def test_stage_metrics_reach_registry(self):
        executor = PipelineExecutor(
            MTkScheduler(2), retry_policy="capped-backoff", batch_size=2
        )
        executor.execute(_workload(8), seed=8)
        stats = executor.stats
        snapshot = executor.stage_snapshot()["admission"]
        assert stats["retries_delayed"] == snapshot["delayed_retries"]
        assert stats["admission_waits"] == snapshot["waits"]
        assert executor.metrics.gauge("queue_depth_max").value == float(
            snapshot["max_queue_depth"]
        )
