"""Tests for the analysis harnesses (degree of concurrency, complexity)."""

from repro.analysis.complexity import (
    linearity_ratio,
    measure_cost,
    speedup_bound,
    sweep,
)
from repro.analysis.concurrency import (
    acceptance_by_dimension,
    acceptance_table,
    containment_matrix,
)
from repro.analysis.report import render_table, render_vector, render_vector_table
from repro.core.composite import MTkStarScheduler
from repro.core.mtk import MTkScheduler
from repro.engine.to_scheduler import ConventionalTOScheduler
from repro.model.generator import WorkloadSpec, random_logs


def _stream(count=150, seed=0):
    spec = WorkloadSpec(num_txns=4, ops_per_txn=3, num_items=4)
    return list(random_logs(spec, count, seed=seed))


class TestConcurrencyHarness:
    def test_acceptance_table_rates(self):
        logs = _stream()
        rows = acceptance_table([MTkScheduler(3), MTkScheduler(1)], logs)
        assert all(row.total == len(logs) for row in rows)
        assert all(0.0 <= row.rate <= 1.0 for row in rows)

    def test_composite_observed_superset_of_subprotocols(self):
        logs = _stream()
        star = MTkStarScheduler(3)
        subs = [MTkScheduler(k, read_rule="none") for k in (1, 2, 3)]
        matrix = containment_matrix([star, *subs], logs)
        for sub in subs:
            assert matrix[(sub.name, star.name)]  # sub subset-of star

    def test_mt1_observed_equal_to_conventional_to(self):
        """MT(1) reduces to conventional single-timestamp ordering (the
        paper's TO(1)): on a random stream the two schedulers accept
        exactly the same logs.  (An earlier version of this test asserted
        *strict* containment, but the separating logs were all artifacts
        of a bug that rejected a transaction reading its own most recent
        write; with that fixed, the lines 9-10 fallback also neutralizes
        the read-read condition iv) for k = 1, and the classes coincide.)"""
        logs = _stream(count=400, seed=3)
        matrix = containment_matrix(
            [MTkScheduler(1), ConventionalTOScheduler()], logs
        )
        assert matrix[("MT(1)", "TO(scalar)")]
        assert matrix[("TO(scalar)", "MT(1)")]

    def test_acceptance_by_dimension_saturates(self):
        spec = WorkloadSpec(
            num_txns=3, ops_per_txn=2, num_items=3, two_step_model=True
        )
        logs = list(random_logs(spec, 200, seed=1))
        counts = acceptance_by_dimension(logs, max_k=6)
        # Theorem 3 with q = 2: TO(3) = TO(4) = TO(5) = TO(6).
        assert counts[3] == counts[4] == counts[5] == counts[6]


class TestComplexityHarness:
    def test_cost_linear_in_n(self):
        samples = [measure_cost(n, 3, 2, seed=1) for n in (4, 8, 16)]
        per_op = [s.visits_per_op for s in samples]
        # Cost per operation stays flat as n grows (linear total cost).
        assert max(per_op) / min(per_op) < 1.6

    def test_sweep_and_linearity(self):
        samples = sweep(ns=[4, 8], qs=[2, 4], ks=[2])
        assert len(samples) == 3
        assert linearity_ratio(samples) < 2.0

    def test_speedup_grows_with_k(self):
        assert speedup_bound(10, 64) > speedup_bound(10, 8) > 1.0


class TestReport:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [30, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_vector(self):
        assert render_vector((1, None, 3)) == "<1,*,3>"

    def test_render_vector_table_blanks_unchanged(self):
        snapshots = [
            ("e1", {1: (1, None), 2: (None, None)}),
            ("e2", {1: (1, None), 2: (2, None)}),
        ]
        out = render_vector_table(snapshots, txns=[1, 2])
        lines = out.splitlines()
        assert "<1,*>" in lines[2]
        # Unchanged TS(1) is blank in the second row.
        assert "<1,*>" not in lines[3]
        assert "<2,*>" in lines[3]
