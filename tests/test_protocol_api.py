"""Tests for the shared Scheduler/Decision API surface."""

import pytest

from repro.core.mtk import MTkScheduler
from repro.core.protocol import (
    Decision,
    DecisionStatus,
    RunResult,
    acceptance_count,
)
from repro.model.log import Log
from repro.model.operations import read, write


class TestDecision:
    def test_accepted_and_performed_flags(self):
        op = read(1, "x")
        accept = Decision(DecisionStatus.ACCEPT, op)
        ignore = Decision(DecisionStatus.IGNORE, op)
        reject = Decision(DecisionStatus.REJECT, op)
        assert accept.accepted and accept.performed
        assert ignore.accepted and not ignore.performed
        assert not reject.accepted and not reject.performed

    def test_rendering_includes_reason(self):
        decision = Decision(DecisionStatus.REJECT, read(1, "x"), "too late")
        assert "too late" in str(decision)
        assert "R1[x]" in str(decision)


class TestRunSemantics:
    def test_run_rejects_later_ops_of_aborted_txn(self, starvation_log):
        scheduler = MTkScheduler(2)
        extended = Log(
            starvation_log.operations + (write(3, "z"), read(1, "q"))
        )
        result = scheduler.run(extended)
        # W3[z] after T3's abort is auto-rejected; T1's op still runs.
        statuses = [d.status for d in result.decisions]
        assert statuses[-2] is DecisionStatus.REJECT
        assert statuses[-1] is DecisionStatus.ACCEPT

    def test_stop_on_reject_truncates(self, starvation_log):
        scheduler = MTkScheduler(2)
        result = scheduler.run(starvation_log, stop_on_reject=True)
        assert len(result.decisions) == len(starvation_log)
        assert result.decisions[-1].status is DecisionStatus.REJECT

    def test_trace_populated_only_when_enabled(self, example2_log):
        traced = MTkScheduler(2, trace=True).run(example2_log)
        untraced = MTkScheduler(2, trace=False).run(example2_log)
        assert len(traced.trace) == len(example2_log)
        assert untraced.trace == []

    def test_run_result_ignored_writes(self):
        scheduler = MTkScheduler(2, thomas_write_rule=True)
        log = Log.parse("R3[y] W1[y] W1[x] W3[x]")
        result = scheduler.run(log)
        assert result.ignored_writes == 1
        assert result.accepted

    def test_accepts_is_idempotent(self, example1_log):
        scheduler = MTkScheduler(2)
        assert scheduler.accepts(example1_log)
        assert scheduler.accepts(example1_log)  # reset() makes it pure


class TestAcceptanceCount:
    def test_counts_over_stream(self, example1_log, starvation_log):
        scheduler = MTkScheduler(2)
        count = acceptance_count(
            scheduler, [example1_log, starvation_log, example1_log]
        )
        assert count == 2


class TestRunResultProjection:
    def test_committed_log_excludes_aborted(self, starvation_log):
        from repro.engine.executor import ExecutionReport

        report = ExecutionReport()
        report.committed = {1}
        report.committed_ops = [write(1, "x"), write(2, "x")]
        assert str(report.committed_log) == "W1[x]"
