"""Tests for the multiversion MT(k) scheduler (III-D-6d)."""

from hypothesis import given, settings, strategies as st

from repro.core.multiversion import MVMTkScheduler
from repro.core.mtk import MTkScheduler
from repro.model.log import Log
from repro.model.operations import Operation
from tests.conftest import small_logs


def _serial_reads_from(log: Log, order: list[int]) -> list[tuple[int, str, int]]:
    """Reads-from of the serial replay of *log*'s transactions in
    *order* (0 = initial version)."""
    last_writer: dict[str, int] = {}
    relation = []
    transactions = log.transactions
    for txn_id in order:
        for op in transactions[txn_id].operations:
            if op.kind.is_read:
                relation.append((op.txn, op.item, last_writer.get(op.item, 0)))
            else:
                last_writer[op.item] = op.txn
    return relation


class TestReadBehaviour:
    def test_late_reader_gets_old_version(self):
        """The Fig. 5-flavoured pattern: a reader below the newest writer
        reads an older version instead of aborting."""
        scheduler = MVMTkScheduler(2)
        log = Log.parse("W1[x] W2[x] R3[y] R3[x]")
        # R3[x]: TS(3) < TS(2)?  TS(3)=<1,..> after R3[y]; newest writer
        # T2 has <2,..>: Set(2,3) fails, so T3 reads T1's or T0's version.
        result = scheduler.run(log)
        assert result.accepted
        read_decision = result.decisions[-1]
        assert read_decision.reason.startswith("read-old-version")

    def test_plain_mt_aborts_same_log(self):
        log = Log.parse("W1[x] W2[x] R3[y] R3[x]")
        assert not MTkScheduler(2, read_rule="none").accepts(log)
        assert MVMTkScheduler(2).accepts(log)

    def test_write_invalidating_read_aborts(self):
        """A write sliding between a version and its reader must abort."""
        from repro.model.operations import read, write

        scheduler = MVMTkScheduler(2)
        assert scheduler.process(write(1, "x")).accepted  # TS(1) = <1,*>
        assert scheduler.process(read(2, "x")).accepted  # TS(2) = <2,*>
        # Pin T3 strictly between T1 and T2: <1,5>.
        t3 = scheduler.table.vector(3)
        t3.set(1, 1)
        t3.set(2, 5)
        decision = scheduler.process(write(3, "x"))
        # T2 (above T3) read T1's version (below T3): the new version
        # would invalidate that read.
        assert not decision.accepted
        assert "TS(2)" in decision.reason


class TestViewEquivalence:
    @given(small_logs())
    @settings(max_examples=300)
    def test_reads_match_serial_replay(self, log):
        """End-to-end correctness: the executed reads-from relation equals
        the serial replay in the scheduler's serialization order."""
        scheduler = MVMTkScheduler(3)
        if not scheduler.accepts(log):
            return
        order = scheduler.serialization_order()
        assert sorted(scheduler.reads_from()) == sorted(
            _serial_reads_from(log, order)
        )

    @given(small_logs())
    @settings(max_examples=200)
    def test_version_chain_is_vector_ordered(self, log):
        from repro.core.timestamp import Ordering, compare

        scheduler = MVMTkScheduler(3)
        scheduler.run(log, stop_on_reject=True)
        for item in log.items:
            chain = scheduler.version_chain(item)
            for earlier, later in zip(chain, chain[1:]):
                assert compare(
                    scheduler.table.vector(earlier),
                    scheduler.table.vector(later),
                ).ordering is Ordering.LESS


class TestDegreeOfConcurrency:
    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_mv_accepts_at_least_plain_on_read_heavy(self, seed):
        """On read-heavy streams multiversioning only helps."""
        import random

        from repro.model.generator import WorkloadSpec, random_log

        spec = WorkloadSpec(
            num_txns=4, ops_per_txn=3, num_items=4, write_ratio=0.25
        )
        log = random_log(spec, random.Random(seed))
        if MTkScheduler(3, read_rule="none").accepts(log):
            assert MVMTkScheduler(3).accepts(log)


class TestAbortRetraction:
    def test_aborted_writer_version_is_retracted(self):
        """Regression: an aborted writer's version must leave the chain,
        or later readers would be served phantom data."""
        from repro.model.operations import read, write

        scheduler = MVMTkScheduler(2)
        assert scheduler.process(write(1, "x")).accepted
        assert scheduler.process(read(2, "x")).accepted
        # Pin T3 between T1 and T2 so its write aborts (invalidates T2's
        # read), then confirm no T3 version lingers.
        t3 = scheduler.table.vector(3)
        t3.set(1, 1)
        t3.set(2, 5)
        assert not scheduler.process(write(3, "x")).accepted
        assert 3 not in scheduler.version_chain("x")
        # A fresh reader still sees T1's version.
        decision = scheduler.process(read(4, "x"))
        assert decision.accepted
        assert scheduler.read_source(4, "x") == 1
