"""Regression tests for three confirmed scheduler bugs.

Each test reproduces the exact failure that was observed before the fix;
see DESIGN.md ("implementation notes") for the analysis.
"""

import pytest

from repro.core.distributed import DMTkScheduler
from repro.core.mtk import MTkScheduler
from repro.core.table import NormalEncoding, OptimizedEncoding
from repro.core.timestamp import (
    Counters,
    Ordering,
    SiteTaggedCounters,
    TimestampVector,
    UNDEFINED,
    compare,
)
from repro.model.log import Log


class TestResetWithSiteTaggedCounters:
    """Bug 1: ``MTkScheduler.reset()`` rebuilt counters with a bare
    ``type(counters)()``, which raised ``TypeError`` for
    :class:`SiteTaggedCounters` (the required ``site`` argument was
    dropped)."""

    def test_reset_preserves_site(self):
        scheduler = MTkScheduler(2, counters=SiteTaggedCounters(site=7))
        scheduler.reset()  # regression: raised TypeError before the fix
        scheduler.reset()
        assert scheduler.table.counters.site == 7
        # The rebuilt counters still mint (counter, site) pairs.
        value = scheduler.table.counters.fresh_upper()
        assert value[1] == 7

    def test_reset_preserves_initial_counter_state(self):
        counters = SiteTaggedCounters(site=3, lcount=-5, ucount=9)
        scheduler = MTkScheduler(2, counters=counters)
        scheduler.run(Log.parse("W1[x] R2[x]"))
        scheduler.reset()
        rebuilt = scheduler.table.counters
        assert rebuilt is not counters  # a pristine copy, not the used one
        assert rebuilt.site == 3
        assert rebuilt.fresh_upper() == (9, 3)

    def test_distributed_scheduler_reusable_across_logs(self):
        # The real-world path: DMT(k) sites run with site-tagged counters
        # and are reset between logs by accepts()/run().
        scheduler = DMTkScheduler(2, num_sites=2)
        log = Log.parse("W1[x] R2[x] W2[y]")
        first = scheduler.run(log)
        second = scheduler.run(log)
        assert first.accepted == second.accepted


class TestReadOwnWrite:
    """Bug 2: under the lines 9-10 fallback a transaction reading its OWN
    most recent write was rejected — ``compare(TS(WT(x)), TS(i))`` yields
    IDENTICAL (the vectors are the same object), never LESS."""

    # T1 writes x; T2's read orders TS(1) < TS(2) and leaves RT(x) = 2;
    # T1 then rereads its own write while TS(RT(x)) > TS(1).
    LOG = Log.parse("W1[x] R2[x] R1[x]")

    @pytest.mark.parametrize("read_rule", ["line9", "relaxed"])
    def test_rereading_own_write_accepted(self, read_rule):
        scheduler = MTkScheduler(2, read_rule=read_rule)
        result = scheduler.run(self.LOG)
        assert result.accepted, [str(d) for d in result.decisions]
        assert result.decisions[-1].reason == "read-own-write"

    def test_strict_rule_unaffected(self):
        # read_rule="none" disables the whole fallback; the reread is
        # still rejected there by design, not by the bug.
        scheduler = MTkScheduler(2, read_rule="none")
        assert not scheduler.run(self.LOG).accepted


class TestOptimizedEncodingHoles:
    """Bug 3: ``OptimizedEncoding.encode_semi`` crashed with "element
    already defined" when the shorter vector held *holes* — defined
    elements inside the prefix-copy range (k-th-column counter draws land
    there before the prefix fills in)."""

    @staticmethod
    def _encoding():
        return OptimizedEncoding(is_hot=lambda item: True)

    def test_mismatching_hole_falls_back(self):
        # Copy range is positions 1..3; the shorter vector already holds 7
        # at position 2 where the longer holds 3.  Before the fix this
        # raised; now the normal rule applies untouched.
        ts_j = TimestampVector(4, [UNDEFINED, 7, UNDEFINED, UNDEFINED])
        ts_i = TimestampVector(4, [1, 3, 1, UNDEFINED])
        self._encoding().encode_semi(ts_j, ts_i, 1, Counters(), "x")
        assert compare(ts_j, ts_i).ordering is Ordering.LESS
        assert ts_j.get(1) == 0  # the NormalEncoding adjacent value
        assert ts_j.get(2) == 7  # the hole was never overwritten

    def test_matching_hole_is_skipped(self):
        # The hole matches the longer vector: the copy skips it and the
        # order lands in the first position past the shared prefix.
        ts_j = TimestampVector(4, [UNDEFINED, 3, UNDEFINED, UNDEFINED])
        ts_i = TimestampVector(4, [1, 3, 1, UNDEFINED])
        self._encoding().encode_semi(ts_j, ts_i, 1, Counters(), "x")
        assert [ts_j.get(p) for p in (1, 2, 3)] == [1, 3, 1]
        comparison = compare(ts_j, ts_i)
        assert comparison.ordering is Ordering.LESS
        assert comparison.position == 4  # encoded at the landing position

    def test_taken_landing_position_falls_back(self):
        # The landing position after the shared prefix is already defined
        # on the shorter side; the copy would have nowhere to encode the
        # order, so the normal rule applies.
        ts_j = TimestampVector(4, [UNDEFINED, 3, 1, 5])
        ts_i = TimestampVector(4, [1, 3, 1, UNDEFINED])
        self._encoding().encode_semi(ts_j, ts_i, 1, Counters(), "x")
        assert compare(ts_j, ts_i).ordering is Ordering.LESS
        assert ts_j.get(1) == 0
        assert ts_j.get(4) == 5

    def test_matches_normal_encoding_on_cold_items(self):
        ts_cold_j = TimestampVector(3)
        ts_cold_i = TimestampVector(3, [4, UNDEFINED, UNDEFINED])
        ts_norm_j = TimestampVector(3)
        ts_norm_i = TimestampVector(3, [4, UNDEFINED, UNDEFINED])
        OptimizedEncoding(is_hot=lambda item: False).encode_semi(
            ts_cold_j, ts_cold_i, 1, Counters(), "x"
        )
        NormalEncoding().encode_semi(ts_norm_j, ts_norm_i, 1, Counters(), "x")
        assert ts_cold_j.snapshot() == ts_norm_j.snapshot()
        assert ts_cold_i.snapshot() == ts_norm_i.snapshot()


class TestParallelComparatorInterning:
    """Bug 4 (PR 6): the III-E simulator constructed fresh
    ``Comparison(...)`` objects per simulated comparison — allocating on
    every call and breaking the identity-equality (``is``) contract the
    interned sequential results provide."""

    def test_results_are_interned_singletons(self):
        from repro.core.vector_processor import VectorComparator

        comparator = VectorComparator(3)
        left = TimestampVector(3, [1, UNDEFINED, 5])
        right = TimestampVector(3, [1, 2, UNDEFINED])
        result = comparator.compare(left, right)
        assert result.comparison is compare(left, right)

    def test_identical_outcome_is_interned(self):
        from repro.core.vector_processor import VectorComparator

        comparator = VectorComparator(2)
        left = TimestampVector(2, [1, 2])
        right = TimestampVector(2, [1, 2])
        assert comparator.compare(left, right).comparison is compare(
            left, right
        )


class TestLowerCounterAvoidsVirtualZero:
    """Bug 5 (PR 6): ``Counters()`` started ``lcount`` at 0, colliding
    with the virtual transaction's preset element (``table.py`` sets
    ``virtual.set(1, 0)``).  At ``k = 1`` the first ``fresh_lower()``
    issued 0, duplicating T0's k-th element: two *identical* vectors make
    ``Set`` unorderable (``set_less`` raises on IDENTICAL)."""

    def test_first_lower_value_is_not_zero(self):
        assert Counters().fresh_lower() == -1

    def test_k1_lower_draw_does_not_duplicate_t0(self):
        from repro.core.table import TimestampTable, VIRTUAL_TXN

        table = TimestampTable(1)
        assert table.set_less(VIRTUAL_TXN, 1).ok  # TS(1) := <1> (upper)
        # T2 must be ordered before T1 while T1 is defined and T2 is not:
        # the ? rule at position k draws from lcount for the undefined side.
        outcome = table.set_less(2, 1)
        assert outcome.ok
        column = table.column(1)
        assert len(column) == len(set(column)), "k-th column not distinct"
        # Before the fix TS(2) == TS(0) == <0>; any later Set against T0
        # raised RuntimeError("vectors ... are identical").
        ordering = compare(table.vector(2), table.vector(VIRTUAL_TXN)).ordering
        assert ordering is not Ordering.IDENTICAL
        table.set_less(VIRTUAL_TXN, 2)  # must not raise

    def test_mt1_survives_lower_draw_against_fresh_item(self):
        # Scheduler-level shape of the same bug: MT(1) where a lower-column
        # draw lands next to the virtual transaction's 0.
        scheduler = MTkScheduler(1)
        table = scheduler.table
        table.set_less(0, 1)
        table.set_less(2, 1)
        order = scheduler.serialization_order()  # must not raise
        assert set(order) == {1, 2}


class TestReclaimPurgesComparisonCache:
    """Bug 6 (PR 6): ``TimestampTable.reclaim()`` dropped the slab row but
    left ``ComparisonCache`` entries pinning strong references to the dead
    vector — the reclaimed row stayed alive (keyed by a dead txn id) until
    FIFO eviction."""

    def test_reclaim_drops_cache_entries(self):
        from repro.core.table import TimestampTable

        table = TimestampTable(2)
        table.set_less(0, 1)
        table.set_less(1, 2)
        victim = table.vector(1)
        # Warm the cache with comparisons involving T1 on both sides.
        table.compare_vectors(victim, table.vector(2))
        table.compare_vectors(table.vector(2), victim)
        entries = table._cache._entries
        assert any(
            entry[0] is victim or entry[1] is victim
            for entry in entries.values()
        )
        table.reclaim(1)
        assert not any(
            entry[0] is victim or entry[1] is victim
            for entry in entries.values()
        ), "reclaimed row still pinned by the comparison cache"

    def test_purge_is_scoped_to_the_reclaimed_row(self):
        from repro.core.table import TimestampTable

        table = TimestampTable(2)
        table.set_less(0, 1)
        table.set_less(1, 2)
        table.set_less(2, 3)
        table.compare_vectors(table.vector(2), table.vector(3))
        before = len(table._cache)
        assert before > 0
        table.reclaim(1)
        survivors = [
            entry
            for entry in table._cache._entries.values()
            if entry[0] is table.vector(2) or entry[1] is table.vector(3)
        ]
        assert survivors, "unrelated cache entries were purged"


class TestCopyPreservesEpochs:
    """Bug 7 (PR 6): ``TimestampVector.copy()`` restarted the clone at
    version 0 / flush epoch 0, silently defeating the cache's flush-epoch
    staleness test if a copy is ever substituted for the original."""

    def test_copy_carries_version_and_flushes(self):
        vector = TimestampVector(3)
        vector.set(1, 4)
        vector.flush()
        vector.set(2, 9)
        clone = vector.copy()
        assert clone.snapshot() == vector.snapshot()
        assert clone.version == vector.version
        assert clone.flush_count == vector.flush_count

    def test_copy_is_still_independent(self):
        vector = TimestampVector(2, [1, UNDEFINED])
        clone = vector.copy()
        clone.set(2, 5)
        assert vector.get(2) is UNDEFINED
        assert clone.version == vector.version + 1
