"""Regression tests for three confirmed scheduler bugs.

Each test reproduces the exact failure that was observed before the fix;
see DESIGN.md ("implementation notes") for the analysis.
"""

import pytest

from repro.core.distributed import DMTkScheduler
from repro.core.mtk import MTkScheduler
from repro.core.table import NormalEncoding, OptimizedEncoding
from repro.core.timestamp import (
    Counters,
    Ordering,
    SiteTaggedCounters,
    TimestampVector,
    UNDEFINED,
    compare,
)
from repro.model.log import Log


class TestResetWithSiteTaggedCounters:
    """Bug 1: ``MTkScheduler.reset()`` rebuilt counters with a bare
    ``type(counters)()``, which raised ``TypeError`` for
    :class:`SiteTaggedCounters` (the required ``site`` argument was
    dropped)."""

    def test_reset_preserves_site(self):
        scheduler = MTkScheduler(2, counters=SiteTaggedCounters(site=7))
        scheduler.reset()  # regression: raised TypeError before the fix
        scheduler.reset()
        assert scheduler.table.counters.site == 7
        # The rebuilt counters still mint (counter, site) pairs.
        value = scheduler.table.counters.fresh_upper()
        assert value[1] == 7

    def test_reset_preserves_initial_counter_state(self):
        counters = SiteTaggedCounters(site=3, lcount=-5, ucount=9)
        scheduler = MTkScheduler(2, counters=counters)
        scheduler.run(Log.parse("W1[x] R2[x]"))
        scheduler.reset()
        rebuilt = scheduler.table.counters
        assert rebuilt is not counters  # a pristine copy, not the used one
        assert rebuilt.site == 3
        assert rebuilt.fresh_upper() == (9, 3)

    def test_distributed_scheduler_reusable_across_logs(self):
        # The real-world path: DMT(k) sites run with site-tagged counters
        # and are reset between logs by accepts()/run().
        scheduler = DMTkScheduler(2, num_sites=2)
        log = Log.parse("W1[x] R2[x] W2[y]")
        first = scheduler.run(log)
        second = scheduler.run(log)
        assert first.accepted == second.accepted


class TestReadOwnWrite:
    """Bug 2: under the lines 9-10 fallback a transaction reading its OWN
    most recent write was rejected — ``compare(TS(WT(x)), TS(i))`` yields
    IDENTICAL (the vectors are the same object), never LESS."""

    # T1 writes x; T2's read orders TS(1) < TS(2) and leaves RT(x) = 2;
    # T1 then rereads its own write while TS(RT(x)) > TS(1).
    LOG = Log.parse("W1[x] R2[x] R1[x]")

    @pytest.mark.parametrize("read_rule", ["line9", "relaxed"])
    def test_rereading_own_write_accepted(self, read_rule):
        scheduler = MTkScheduler(2, read_rule=read_rule)
        result = scheduler.run(self.LOG)
        assert result.accepted, [str(d) for d in result.decisions]
        assert result.decisions[-1].reason == "read-own-write"

    def test_strict_rule_unaffected(self):
        # read_rule="none" disables the whole fallback; the reread is
        # still rejected there by design, not by the bug.
        scheduler = MTkScheduler(2, read_rule="none")
        assert not scheduler.run(self.LOG).accepted


class TestOptimizedEncodingHoles:
    """Bug 3: ``OptimizedEncoding.encode_semi`` crashed with "element
    already defined" when the shorter vector held *holes* — defined
    elements inside the prefix-copy range (k-th-column counter draws land
    there before the prefix fills in)."""

    @staticmethod
    def _encoding():
        return OptimizedEncoding(is_hot=lambda item: True)

    def test_mismatching_hole_falls_back(self):
        # Copy range is positions 1..3; the shorter vector already holds 7
        # at position 2 where the longer holds 3.  Before the fix this
        # raised; now the normal rule applies untouched.
        ts_j = TimestampVector(4, [UNDEFINED, 7, UNDEFINED, UNDEFINED])
        ts_i = TimestampVector(4, [1, 3, 1, UNDEFINED])
        self._encoding().encode_semi(ts_j, ts_i, 1, Counters(), "x")
        assert compare(ts_j, ts_i).ordering is Ordering.LESS
        assert ts_j.get(1) == 0  # the NormalEncoding adjacent value
        assert ts_j.get(2) == 7  # the hole was never overwritten

    def test_matching_hole_is_skipped(self):
        # The hole matches the longer vector: the copy skips it and the
        # order lands in the first position past the shared prefix.
        ts_j = TimestampVector(4, [UNDEFINED, 3, UNDEFINED, UNDEFINED])
        ts_i = TimestampVector(4, [1, 3, 1, UNDEFINED])
        self._encoding().encode_semi(ts_j, ts_i, 1, Counters(), "x")
        assert [ts_j.get(p) for p in (1, 2, 3)] == [1, 3, 1]
        comparison = compare(ts_j, ts_i)
        assert comparison.ordering is Ordering.LESS
        assert comparison.position == 4  # encoded at the landing position

    def test_taken_landing_position_falls_back(self):
        # The landing position after the shared prefix is already defined
        # on the shorter side; the copy would have nowhere to encode the
        # order, so the normal rule applies.
        ts_j = TimestampVector(4, [UNDEFINED, 3, 1, 5])
        ts_i = TimestampVector(4, [1, 3, 1, UNDEFINED])
        self._encoding().encode_semi(ts_j, ts_i, 1, Counters(), "x")
        assert compare(ts_j, ts_i).ordering is Ordering.LESS
        assert ts_j.get(1) == 0
        assert ts_j.get(4) == 5

    def test_matches_normal_encoding_on_cold_items(self):
        ts_cold_j = TimestampVector(3)
        ts_cold_i = TimestampVector(3, [4, UNDEFINED, UNDEFINED])
        ts_norm_j = TimestampVector(3)
        ts_norm_i = TimestampVector(3, [4, UNDEFINED, UNDEFINED])
        OptimizedEncoding(is_hot=lambda item: False).encode_semi(
            ts_cold_j, ts_cold_i, 1, Counters(), "x"
        )
        NormalEncoding().encode_semi(ts_norm_j, ts_norm_i, 1, Counters(), "x")
        assert ts_cold_j.snapshot() == ts_norm_j.snapshot()
        assert ts_cold_i.snapshot() == ts_norm_i.snapshot()
