"""Tests of the vectorized batch decision core (``repro.core.batch``).

The core's contract is *invisibility*: with ``decision_core="numpy"``
every Definition 6 verdict — batched, primed, or fallen back — must be
bit-identical to the pure-Python sequential scan, and with numpy absent
the switch must silently degrade to the Python path.  The hypothesis
property below drives the packing and mask arithmetic over arbitrary
hole patterns, wide vectors past the ``Comparison`` intern limit, and
DMT-style ``(counter, site)`` k-th columns; the scheduler- and
executor-level classes assert end-to-end equivalence including the
speculative admission-window priming.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import batch
from repro.core.batch import (
    HAVE_NUMPY,
    SITE_BITS,
    make_core,
    pack_element,
)
from repro.core.distributed import DMTkScheduler
from repro.core.mtk import MTkScheduler
from repro.core.table import TimestampTable, VIRTUAL_TXN
from repro.core.timestamp import Comparison, compare
from repro.engine.executor import TransactionExecutor
from repro.model.generator import WorkloadSpec, random_log
from repro.model.log import Log
from tests.conftest import small_logs

requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy unavailable; core degrades to python"
)

#: Domain bounds within which packing must be exact.
_COUNTER_LIMIT = 1 << (63 - SITE_BITS)


# ----------------------------------------------------------------------
# Element packing
# ----------------------------------------------------------------------
class TestPackElement:
    def test_int_packs_into_high_bits(self):
        assert pack_element(5) == 5 << SITE_BITS
        assert pack_element(-3) == -3 << SITE_BITS
        assert pack_element(0) == 0

    def test_tuple_packs_counter_high_site_low(self):
        assert pack_element((5, 2)) == (5 << SITE_BITS) | 2
        assert pack_element((-1, 7)) == (-1 << SITE_BITS) | 7

    def test_int_sorts_with_site_zero_tuple_boundary(self):
        # Within one column types never mix, but the packed axis is
        # shared: e and (e, 0) coincide by construction.
        assert pack_element(4) == pack_element((4, 0))

    @pytest.mark.parametrize(
        "element",
        [
            True,  # bool is not a counter value
            1 << 60,  # counter overflow
            -(1 << 60),
            (1 << 60, 0),  # tuple counter overflow
            (1, 1 << 16),  # site out of range
            (1, -1),  # negative site
            (1, 2, 3),  # wrong arity
            ("a", 1),  # non-int counter
            (1, "a"),  # non-int site
            "x",  # not an element type
            None,
            1.5,
        ],
    )
    def test_unpackable_domain(self, element):
        assert pack_element(element) is None

    @given(
        st.integers(-_COUNTER_LIMIT + 1, _COUNTER_LIMIT - 1),
        st.integers(-_COUNTER_LIMIT + 1, _COUNTER_LIMIT - 1),
    )
    @settings(max_examples=200)
    def test_int_packing_preserves_order(self, a, b):
        pa, pb = pack_element(a), pack_element(b)
        assert (pa < pb) == (a < b)
        assert (pa == pb) == (a == b)

    @given(
        st.tuples(st.integers(-(1 << 40), 1 << 40), st.integers(0, (1 << 16) - 1)),
        st.tuples(st.integers(-(1 << 40), 1 << 40), st.integers(0, (1 << 16) - 1)),
    )
    @settings(max_examples=200)
    def test_tuple_packing_preserves_order(self, a, b):
        pa, pb = pack_element(a), pack_element(b)
        assert (pa < pb) == (a < b)
        assert (pa == pb) == (a == b)


# ----------------------------------------------------------------------
# Batch decisions == sequential scans (the tentpole property)
# ----------------------------------------------------------------------
@st.composite
def filled_tables(draw):
    """A table (numpy core) with 2-4 vectors of arbitrary hole patterns.

    Covers k past ``Comparison.INTERN_LIMIT`` (wide verdicts are fresh
    objects, not interned) and DMT-style site-tagged k-th columns.
    """
    k = draw(st.integers(min_value=1, max_value=24))
    site_tagged = draw(st.booleans())
    n = draw(st.integers(min_value=2, max_value=4))
    rows = []
    for _ in range(n):
        row = []
        for pos in range(1, k + 1):
            if draw(st.booleans()):
                row.append(None)  # hole: leave position undefined
            elif site_tagged and pos == k:
                row.append(
                    (draw(st.integers(-5, 5)), draw(st.integers(0, 3)))
                )
            else:
                row.append(draw(st.integers(-9, 9)))
        rows.append(row)
    return k, site_tagged, rows


@requires_numpy
class TestBatchMatchesSequential:
    @given(filled_tables())
    @settings(max_examples=250, deadline=None)
    def test_all_pairs_bit_identical(self, case):
        k, site_tagged, rows = case
        table = TimestampTable(k, decision_core="numpy")
        txns = list(range(1, len(rows) + 1))
        for txn, row in zip(txns, rows):
            vector = table.vector(txn)
            for pos, value in enumerate(row, start=1):
                if value is not None:
                    vector.set(pos, value)
        # T0's preset column-1 integer only type-clashes with tuples
        # when k == 1 (pure Python would TypeError on that pair too).
        if not (site_tagged and k == 1):
            txns.append(VIRTUAL_TXN)
        pairs = [(a, b) for a in txns for b in txns if a != b]
        core = table.batch_core
        for (a, b), got in zip(pairs, core.compare_pairs(pairs)):
            want = compare(table.vector(a), table.vector(b))
            assert got == want
            if want.position <= Comparison.INTERN_LIMIT:
                # Interned range: identity, not merely value equality.
                assert got is want

    def test_wide_k_past_intern_limit(self):
        k = Comparison.INTERN_LIMIT + 4
        table = TimestampTable(k, decision_core="numpy")
        for pos in range(1, k + 1):
            table.vector(1).set(pos, pos)
            table.vector(2).set(pos, pos if pos < k else pos + 1)
        [got] = table.batch_core.compare_pairs([(1, 2)])
        want = compare(table.vector(1), table.vector(2))
        assert got == want
        assert got.position == k > Comparison.INTERN_LIMIT

    def test_identical_vectors(self):
        table = TimestampTable(3, decision_core="numpy")
        for txn in (1, 2):
            for pos in range(1, 4):
                table.vector(txn).set(pos, pos)
        [got] = table.batch_core.compare_pairs([(1, 2)])
        assert got == compare(table.vector(1), table.vector(2))
        assert got.ordering.value == "=="


# ----------------------------------------------------------------------
# Graceful degradation: unpackable rows take the sequential scan
# ----------------------------------------------------------------------
@requires_numpy
class TestUnpackableFallback:
    def test_huge_int_falls_back_exactly(self):
        table = TimestampTable(2, decision_core="numpy")
        table.vector(1).set(1, 1 << 60)
        table.vector(2).set(1, 5)
        core = table.batch_core
        results = core.compare_pairs([(1, 2), (2, 1)])
        assert results[0] == compare(table.vector(1), table.vector(2))
        assert results[1] == compare(table.vector(2), table.vector(1))
        assert core.fallbacks == 2

    def test_fallback_is_per_pair_not_per_batch(self):
        table = TimestampTable(2, decision_core="numpy")
        table.vector(1).set(1, 1 << 60)  # unpackable row
        table.vector(2).set(1, 5)
        table.vector(3).set(1, 7)
        core = table.batch_core
        results = core.compare_pairs([(1, 2), (2, 3)])
        assert core.fallbacks == 1  # only the pair touching row 1
        assert results[0] == compare(table.vector(1), table.vector(2))
        assert results[1] == compare(table.vector(2), table.vector(3))

    def test_huge_tuple_counter_falls_back(self):
        table = TimestampTable(1, decision_core="numpy")
        table.vector(1).set(1, (1 << 60, 2))
        table.vector(2).set(1, (4, 1))
        [got] = table.batch_core.compare_pairs([(1, 2)])
        assert got == compare(table.vector(1), table.vector(2))
        assert table.batch_core.fallbacks == 1


# ----------------------------------------------------------------------
# Mirror-row lifecycle: lazy sync, invalidation, reclaim, growth
# ----------------------------------------------------------------------
@requires_numpy
class TestRowLifecycle:
    def test_unmutated_rows_are_not_resynced(self):
        table = TimestampTable(2, decision_core="numpy")
        table.vector(1).set(1, 1)
        table.vector(2).set(1, 2)
        core = table.batch_core
        first = core.compare_pairs([(1, 2)])
        synced = core.syncs
        again = core.compare_pairs([(1, 2)])
        assert core.syncs == synced  # mirror already current
        assert first == again

    def test_mutation_invalidates_row(self):
        table = TimestampTable(2, decision_core="numpy")
        table.vector(1).set(1, 1)
        table.vector(2).set(1, 1)
        core = table.batch_core
        [before] = core.compare_pairs([(1, 2)])
        table.vector(2).set(2, 9)  # version bump
        [after] = core.compare_pairs([(1, 2)])
        assert after == compare(table.vector(1), table.vector(2))
        assert before != after

    def test_reclaim_forgets_row_and_reuses_slot(self):
        table = TimestampTable(2, decision_core="numpy")
        table.vector(1).set(1, 1)
        table.vector(2).set(1, 2)
        core = table.batch_core
        core.compare_pairs([(1, 2)])
        row = core._row_of[2]
        old_vector = table.vector(2)
        table.reclaim(2)
        assert 2 not in core._row_of
        assert core._vec_of[row] is not old_vector  # no strong-ref leak
        # The freed slot is recycled for the next new transaction, and a
        # rematerialized T2 gets a fresh (identity-checked) encoding.
        table.vector(2).set(1, 7)
        core.compare_pairs([(1, 2)])
        assert core._row_of[2] == row
        [got] = core.compare_pairs([(1, 2)])
        assert got == compare(table.vector(1), table.vector(2))

    def test_plane_growth_past_initial_capacity(self):
        table = TimestampTable(2, decision_core="numpy")
        n = batch.BatchDecisionCore._INITIAL_ROWS + 8
        for txn in range(1, n + 1):
            table.vector(txn).set(1, txn)
        pairs = [(txn, txn + 1) for txn in range(1, n)]
        results = table.batch_core.compare_pairs(pairs)
        for (a, b), got in zip(pairs, results):
            assert got is compare(table.vector(a), table.vector(b))


# ----------------------------------------------------------------------
# Speculative priming: primed verdicts must be invisible
# ----------------------------------------------------------------------
def _drive(table, script, prime=False):
    """Replay (txn, item, kind) steps like the scheduler's hot path:
    ``order_after_latest`` then an index update on success.  With
    ``prime=True`` every step is batch-primed first (window of one)."""
    outcomes = []
    for txn, item, kind in script:
        if prime:
            table.prime_requests([(txn, item)])
        j, outcome = table.order_after_latest(item, txn)
        outcomes.append((j, outcome.ok, outcome.comparison, outcome.encoded))
        if outcome.ok:
            (table.set_rt if kind == "r" else table.set_wt)(item, txn)
    return outcomes


_SCRIPT = [
    (1, "x", "r"),
    (2, "x", "w"),
    (1, "y", "w"),
    (3, "x", "r"),
    (2, "y", "r"),
    (3, "y", "w"),
]


@requires_numpy
class TestPriming:
    def test_primed_path_matches_plain_path(self):
        plain = TimestampTable(2, decision_core="numpy")
        primed = TimestampTable(2, decision_core="numpy")
        assert _drive(plain, _SCRIPT) == _drive(primed, _SCRIPT, prime=True)
        for txn in (1, 2, 3):
            assert (
                plain.vector(txn).snapshot() == primed.vector(txn).snapshot()
            )
        assert primed.batch_core.pairs_decided > 0

    def test_prime_entry_is_consumed_once(self):
        table = TimestampTable(2, decision_core="numpy")
        assert table.prime_requests([(1, "x")]) == 1
        assert (1, "x") in table._primed
        table.order_after_latest("x", 1)
        assert (1, "x") not in table._primed

    def test_stale_prime_fails_validation(self):
        table = TimestampTable(2, decision_core="numpy")
        control = TimestampTable(2)
        table.prime_requests([(2, "x")])
        # The world moves on before T2's request arrives: T1 writes x,
        # changing WT(x) from under the primed entry.
        for t in (table, control):
            j, outcome = t.order_after_latest("x", 1)
            assert outcome.ok
            t.set_wt("x", 1)
        got = table.order_after_latest("x", 2)
        want = control.order_after_latest("x", 2)
        assert got[0] == want[0]
        assert got[1].ok == want[1].ok
        assert got[1].comparison == want[1].comparison
        assert table.vector(2).snapshot() == control.vector(2).snapshot()

    def test_priming_is_noop_on_python_core(self):
        table = TimestampTable(2)  # decision_core defaults to python
        assert table.prime_requests([(1, "x")]) == 0
        assert table._primed == {}


# ----------------------------------------------------------------------
# Scheduler- and executor-level equivalence (the fuzz rule, statically)
# ----------------------------------------------------------------------
@requires_numpy
class TestEndToEndEquivalence:
    @given(small_logs())
    @settings(max_examples=80, deadline=None)
    def test_mt3_runs_identically(self, log):
        base = MTkScheduler(3).run(log)
        vectored_scheduler = MTkScheduler(3, decision_core="numpy")
        vectored = vectored_scheduler.run(log)
        assert [d.status for d in base.decisions] == [
            d.status for d in vectored.decisions
        ]
        assert base.aborted == vectored.aborted
        assert vectored_scheduler.table.decision_core == "numpy"

    @given(small_logs())
    @settings(max_examples=50, deadline=None)
    def test_dmt2_runs_identically(self, log):
        base = DMTkScheduler(2).run(log)
        vectored = DMTkScheduler(2, decision_core="numpy").run(log)
        assert [d.status for d in base.decisions] == [
            d.status for d in vectored.decisions
        ]
        assert base.aborted == vectored.aborted

    def test_serialization_order_uses_core_and_matches(self):
        log = Log.parse("R1[a] W2[a] R3[b] W1[b] R4[a] W3[a] R2[b] W4[b]")
        base = MTkScheduler(3)
        base.run(log)
        vectored = MTkScheduler(3, decision_core="numpy")
        vectored.run(log)
        assert vectored.serialization_order() == base.serialization_order()
        # >2 live transactions: the all-pairs batch actually ran.
        assert vectored.table.batch_core.pairs_decided > 0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_primed_executor_report_is_bit_identical(self, seed):
        spec = WorkloadSpec(
            num_txns=6, ops_per_txn=4, num_items=3, write_ratio=0.5
        )
        log = random_log(spec, random.Random(seed))
        transactions = list(log.transactions.values())
        legacy = TransactionExecutor(MTkScheduler(2)).execute(
            transactions, schedule=log
        )
        primed_scheduler = MTkScheduler(2, decision_core="numpy")
        primed = TransactionExecutor(primed_scheduler).execute(
            transactions, schedule=log
        )
        assert primed.committed == legacy.committed
        assert primed.failed == legacy.failed
        assert primed.restarts == legacy.restarts
        assert primed.ops_executed == legacy.ops_executed
        assert primed.ops_reexecuted == legacy.ops_reexecuted
        assert primed.committed_ops == legacy.committed_ops
        # The admission windows actually primed the core.
        assert primed_scheduler.table.batch_core.pairs_decided > 0

    def test_fuzz_rule_clean_on_paper_example(self):
        from repro.check.fuzz import check_case, vectorized_violations

        log = Log.parse("W1[x] W1[y] R3[x] R2[y] W3[y]")
        assert vectorized_violations(log) == []
        rules = {v.rule for v in check_case(log, run_executor=False)}
        assert "vectorized-equivalence" not in rules


# ----------------------------------------------------------------------
# numpy-absent degradation (the "accelerator, never a dependency" leg)
# ----------------------------------------------------------------------
class TestNumpyAbsentFallback:
    def test_switch_degrades_silently(self, monkeypatch):
        monkeypatch.setattr(batch, "HAVE_NUMPY", False)
        table = TimestampTable(2, decision_core="numpy")
        assert table.decision_core == "python"
        assert table.batch_core is None
        assert table.core_info()["pairs_decided"] == 0
        assert table.prime_requests([(1, "x")]) == 0

    def test_scheduler_still_runs(self, monkeypatch):
        monkeypatch.setattr(batch, "HAVE_NUMPY", False)
        scheduler = MTkScheduler(2, decision_core="numpy")
        result = scheduler.run(Log.parse("R1[x] W2[x] R1[y] W1[y]"))
        assert not scheduler.wants_priming
        assert result.decisions
        base = MTkScheduler(2).run(Log.parse("R1[x] W2[x] R1[y] W1[y]"))
        assert [d.status for d in result.decisions] == [
            d.status for d in base.decisions
        ]

    def test_make_core_returns_none(self, monkeypatch):
        monkeypatch.setattr(batch, "HAVE_NUMPY", False)
        assert make_core(TimestampTable(2)) is None

    def test_invalid_switch_rejected(self):
        with pytest.raises(ValueError, match="decision_core"):
            TimestampTable(2, decision_core="simd")
        with pytest.raises(ValueError, match="decision_core"):
            MTkScheduler(2, decision_core="simd")
