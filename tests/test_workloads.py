"""Tests for the workload presets and generators."""

import random

import pytest

from repro.workloads.hotspot import HotspotSpec, generate, hotspot_log, hotspot_logs
from repro.workloads.nested_wl import (
    TABLE_IV_TYPES,
    sited_groups,
    typed_transactions,
    typed_workload,
)
from repro.workloads.synthetic import PRESETS, logs, preset, sample


class TestPresets:
    def test_all_presets_generate(self):
        for name in PRESETS:
            log = sample(name, seed=1)
            assert len(log) > 0

    def test_unknown_preset_lists_options(self):
        with pytest.raises(KeyError, match="multiprogramming"):
            preset("bogus")

    def test_multiprogramming_level_matches_paper(self):
        """III-D-6a: 8-10 concurrently active transactions."""
        assert 8 <= PRESETS["multiprogramming"].num_txns <= 10

    def test_two_step_preset_is_two_step(self):
        assert sample("two_step", seed=3).is_two_step()

    def test_log_stream_reproducible(self):
        assert list(logs("low_conflict", 3, seed=5)) == list(
            logs("low_conflict", 3, seed=5)
        )


class TestHotspot:
    def test_hot_fraction_respected(self):
        spec = HotspotSpec(
            num_txns=30, ops_per_txn=6, hot_items=1, cold_items=50,
            hot_fraction=0.8,
        )
        txns = generate(spec, random.Random(0))
        ops = [op for t in txns for op in t.operations]
        hot_share = sum(op.item.startswith("hot") for op in ops) / len(ops)
        assert hot_share > 0.6

    def test_zero_hot_fraction_never_hits_hot_set(self):
        spec = HotspotSpec(hot_fraction=0.0)
        log = hotspot_log(spec, seed=2)
        assert all(not op.item.startswith("hot") for op in log)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            HotspotSpec(hot_fraction=1.5)
        with pytest.raises(ValueError):
            HotspotSpec(hot_items=0)

    def test_stream(self):
        spec = HotspotSpec()
        assert len(list(hotspot_logs(spec, 4, seed=1))) == 4


class TestNestedWorkloads:
    def test_typed_transactions_match_types(self):
        txns, groups = typed_transactions(
            TABLE_IV_TYPES, 10, random.Random(0)
        )
        for txn in txns:
            ttype = TABLE_IV_TYPES[groups[txn.txn_id] - 1]
            assert txn.read_set == set(ttype.read_set)
            assert txn.write_set == set(ttype.write_set)

    def test_table_iv_shapes(self):
        g1, g2 = TABLE_IV_TYPES
        assert set(g1.read_set) == {"x", "z"} and set(g1.write_set) == {"y", "z"}
        assert set(g2.read_set) == {"y", "w"} and set(g2.write_set) == {"x", "w"}

    def test_typed_workload_interleaves(self):
        log, groups = typed_workload(count=5, seed=1)
        assert set(groups) == set(log.txn_ids)

    def test_sited_groups_reserve_zero(self):
        groups = sited_groups(10, 3, seed=0)
        assert all(1 <= g <= 3 for g in groups.values())
