"""Smoke tests keeping every example script runnable.

Examples are documentation; a broken one is a doc bug.  Each runs in a
subprocess (as a user would) and must exit 0 with its key output present.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": "serialization order: T1 -> T2 -> T3",
    "banking.py": "final total=1000 [OK]",
    "nested_orders.py": "serializable: True",
    "distributed_cluster.py": "max objects locked at once",
    "class_explorer.py": "Fig. 4 region",
    "long_transactions.py": "scanner survives",
    "snapshot_analytics.py": "snapshot consistency verified",
    "paper_tour.py": "tour complete",
    "recovery_demo.py": "bit-identical to the fault-free reference",
}


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs_clean(script):
    result = _run(script)
    assert result.returncode == 0, result.stderr
    assert EXPECTED_SNIPPETS[script] in result.stdout


def test_class_explorer_accepts_cli_log():
    result = _run("class_explorer.py", "R1[x] R2[x] W1[x] W2[x]")
    assert result.returncode == 0
    assert "not serializable" in result.stdout
