"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.model.generator import WorkloadSpec, random_log
from repro.model.log import Log
from repro.model.operations import Operation, OpKind


# ----------------------------------------------------------------------
# Canonical paper logs
# ----------------------------------------------------------------------
@pytest.fixture
def example1_log() -> Log:
    """Example 1 / Fig. 1: accepted by MT(2), rejected by conventional TO."""
    return Log.parse("W1[x] W1[y] R3[x] R2[y] W3[y]")


@pytest.fixture
def example2_log() -> Log:
    """Example 2 / Fig. 3 / Table I."""
    return Log.parse("R1[x] R2[y] R3[z] W1[y] W1[z]")


@pytest.fixture
def starvation_log() -> Log:
    """Fig. 5: T3 starves without the remedy."""
    return Log.parse("W1[x] W2[x] R3[y] W3[x]")


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
ITEMS = ("a", "b", "c")


@st.composite
def small_logs(
    draw,
    max_txns: int = 4,
    max_ops: int = 4,
    items: tuple[str, ...] = ITEMS,
) -> Log:
    """Random small multi-step logs (program order is the draw order —
    every sequence of operations is a valid interleaving of the per-
    transaction subsequences)."""
    num_txns = draw(st.integers(min_value=1, max_value=max_txns))
    length = draw(st.integers(min_value=1, max_value=max_txns * max_ops))
    ops = []
    counts = {t: 0 for t in range(1, num_txns + 1)}
    for _ in range(length):
        candidates = [t for t, c in counts.items() if c < max_ops]
        if not candidates:
            break
        txn = draw(st.sampled_from(candidates))
        counts[txn] += 1
        kind = draw(st.sampled_from([OpKind.READ, OpKind.WRITE]))
        item = draw(st.sampled_from(list(items)))
        ops.append(Operation(kind, txn, item))
    return Log(tuple(ops))


@st.composite
def two_step_logs(draw, max_txns: int = 3) -> Log:
    """Random interleavings of single-read/single-write transactions (the
    analysis model used by the Fig. 4 hierarchy)."""
    from repro.model.operations import two_step
    from repro.model.generator import all_interleavings

    num_txns = draw(st.integers(min_value=1, max_value=max_txns))
    transactions = []
    for txn_id in range(1, num_txns + 1):
        r = draw(st.sampled_from(list(ITEMS)))
        w = draw(st.sampled_from(list(ITEMS)))
        transactions.append(two_step(txn_id, [r], [w]))
    interleavings = list(all_interleavings(transactions))
    return draw(st.sampled_from(interleavings))


@pytest.fixture
def random_stream():
    """Factory for reproducible random log streams."""

    def factory(count: int, seed: int = 0, **spec_kwargs) -> list[Log]:
        defaults = dict(
            num_txns=4, ops_per_txn=3, num_items=4, write_ratio=0.5
        )
        defaults.update(spec_kwargs)
        spec = WorkloadSpec(**defaults)
        rng = random.Random(seed)
        return [random_log(spec, rng) for _ in range(count)]

    return factory
