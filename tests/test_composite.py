"""Tests for the composite protocol MT(k*) (Algorithm 2, Section IV)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.classes.membership import is_dsr
from repro.core.composite import MTkStarScheduler
from repro.core.mtk import MTkScheduler
from repro.model.log import Log
from repro.model.operations import read, write
from tests.conftest import small_logs


class TestUnionProperty:
    """TO(k+) = TO(1) | ... | TO(k): the defining property of MT(k*)."""

    @given(small_logs(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=300)
    def test_equals_union_of_subprotocols(self, log, k):
        star = MTkStarScheduler(k).accepts(log)
        union = any(
            MTkScheduler(h, read_rule="none").accepts(log)
            for h in range(1, k + 1)
        )
        assert star == union

    @given(small_logs())
    @settings(max_examples=200)
    def test_inclusivity_chain(self, log):
        """TO(1+) <= TO(2+) <= TO(3+) <= TO(4+) — acceptance only grows."""
        verdicts = [MTkStarScheduler(k).accepts(log) for k in range(1, 5)]
        for smaller, larger in zip(verdicts, verdicts[1:]):
            assert not smaller or larger

    @given(small_logs(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=200)
    def test_soundness(self, log, k):
        if MTkStarScheduler(k).accepts(log):
            assert is_dsr(log)


class TestExamples:
    def test_accepts_both_incomparable_classes(self, starvation_log, example1_log):
        """Fig. 5's log is TO(1) - TO(3); Example 1 is TO(3) - TO(1).
        MT(3*) accepts both — neither subprotocol alone does."""
        star = MTkStarScheduler(3)
        assert star.accepts(starvation_log)
        assert star.accepts(example1_log)
        assert not MTkScheduler(3, read_rule="none").accepts(starvation_log)
        assert not MTkScheduler(1, read_rule="none").accepts(example1_log)

    def test_subprotocols_stop_incrementally(self, starvation_log):
        star = MTkStarScheduler(3)
        star.reset()
        for op in starvation_log:
            star.process(op)
        # MT(3) (and MT(2)) must have stopped on Fig. 5's log; MT(1) runs.
        assert 1 in star.surviving_protocols()
        assert 3 not in star.surviving_protocols()

    def test_all_stopped_rejects_and_fails(self):
        star = MTkStarScheduler(1)
        # Example 1 is not in TO(1), so MT(1*)'s only subprotocol stops.
        log = Log.parse("W1[x] W1[y] R3[x] R2[y] W3[y]")
        result = star.run(log)
        assert not result.accepted
        assert star.failed
        # Once failed, everything is rejected until reset (Algorithm 2
        # restarts from scratch).
        assert not star.process(read(9, "z")).accepted
        star.reset()
        assert not star.failed


class TestSharedPrefix:
    """Theorem 5: co-accepting subprotocols agree on vector prefixes."""

    @given(small_logs(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=150)
    def test_prefix_sharing_is_faithful(self, log, k):
        """The composite's stored PREFIX+LASTCOL view of subprotocol h must
        equal an independent MT(h) run whenever MT(h) survives."""
        star = MTkStarScheduler(k)
        star.reset()
        ok = True
        for op in log:
            if not star.process(op).accepted:
                ok = False
                break
        if not ok:
            return
        for h in star.surviving_protocols():
            independent = MTkScheduler(h, read_rule="none")
            assert independent.accepts(log)
            for txn in sorted(log.txn_ids):
                expected = independent.table.vector(txn).snapshot()
                actual = star.subprotocol_vector(txn, h)
                assert actual == expected, (h, txn)

    @given(small_logs())
    @settings(max_examples=150)
    def test_theorem5_on_independent_runs(self, log):
        """The literal Theorem 5 statement: run MT(k1) and MT(k2)
        independently; if both accept, prefixes up to k1-1 are equal."""
        k1, k2 = 3, 5
        a = MTkScheduler(k1, read_rule="none")
        b = MTkScheduler(k2, read_rule="none")
        if not (a.accepts(log) and b.accepts(log)):
            return
        for txn in sorted(log.txn_ids):
            assert (
                a.table.vector(txn).snapshot()[: k1 - 1]
                == b.table.vector(txn).snapshot()[: k1 - 1]
            )


class TestStructure:
    def test_lastcol_values_distinct_per_column(self, random_stream):
        for log in random_stream(40, seed=4):
            star = MTkStarScheduler(3)
            star.run(log, stop_on_reject=True)
            for h in range(1, 4):
                column = [
                    star.subprotocol_vector(txn, h)[-1]
                    for txn in sorted(log.txn_ids | {0})
                ]
                defined = [v for v in column if v is not None]
                assert len(defined) == len(set(defined)), f"column {h}"

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            MTkStarScheduler(0)

    def test_k1_star_equals_mt1(self, random_stream):
        for log in random_stream(100, seed=6):
            assert (
                MTkStarScheduler(1).accepts(log)
                == MTkScheduler(1, read_rule="none").accepts(log)
            )
