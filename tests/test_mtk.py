"""Tests for the MT(k) scheduler (Algorithm 1) against the paper's examples."""

import pytest

from repro.core.mtk import MTkScheduler
from repro.core.protocol import DecisionStatus
from repro.model.log import Log
from repro.model.operations import read, write


class TestExample1:
    """Example 1 / Fig. 1: the motivating log."""

    def test_accepted_with_k2(self, example1_log):
        scheduler = MTkScheduler(2)
        assert scheduler.accepts(example1_log)

    def test_vectors_match_figure(self, example1_log):
        scheduler = MTkScheduler(2)
        scheduler.run(example1_log)
        table = scheduler.table
        assert table.vector(1).snapshot() == (1, None)
        assert table.vector(2).snapshot() == (2, 1)
        assert table.vector(3).snapshot() == (2, 2)

    def test_serialization_order(self, example1_log):
        scheduler = MTkScheduler(2)
        scheduler.run(example1_log)
        assert scheduler.serialization_order() == [1, 2, 3]

    def test_equal_vectors_before_conflict(self, example1_log):
        """After the first four operations T2 and T3 hold equal vectors —
        the multidimensionality the paper's introduction is about."""
        scheduler = MTkScheduler(2)
        scheduler.run(example1_log.prefix(4))
        assert scheduler.table.vector(2).snapshot() == (2, None)
        assert scheduler.table.vector(3).snapshot() == (2, None)


class TestExample2:
    """Example 2 / Fig. 3 / Table I: the full vector recording."""

    EXPECTED_TRACE = [
        # (after op index, {txn: vector}) — the rows of Table I.  The paper
        # prints TS(3) = <1, 0> because its lcount starts at 0; ours starts
        # at -1 so the first lower draw cannot duplicate T0's preset k-th
        # element at k = 1 (see TestLowerCounterAvoidsVirtualZero).  The
        # relative order — and hence every decision — is unchanged.
        (1, {1: (1, None)}),
        (2, {2: (1, None)}),
        (3, {3: (1, None)}),
        (4, {1: (1, 2), 2: (1, 1)}),
        (5, {3: (1, -1)}),
    ]

    def test_accepted(self, example2_log):
        assert MTkScheduler(2).accepts(example2_log)

    def test_table_one_recording(self, example2_log):
        scheduler = MTkScheduler(2, trace=True)
        result = scheduler.run(example2_log)
        assert result.accepted
        for op_index, expectations in self.EXPECTED_TRACE:
            snapshot = result.trace[op_index - 1]
            for txn, vector in expectations.items():
                assert snapshot[txn] == vector, (
                    f"after op {op_index}, TS({txn})"
                )

    def test_resulting_vectors(self, example2_log):
        scheduler = MTkScheduler(2)
        scheduler.run(example2_log)
        assert scheduler.table.vector(0).snapshot() == (0, None)
        assert scheduler.table.vector(1).snapshot() == (1, 2)
        assert scheduler.table.vector(2).snapshot() == (1, 1)
        assert scheduler.table.vector(3).snapshot() == (1, -1)  # paper: <1, 0>; lcount now starts at -1

    def test_equivalent_serial_orders(self, example2_log):
        """The paper: L is equivalent to T3 T2 T1 or T2 T3 T1."""
        scheduler = MTkScheduler(2)
        scheduler.run(example2_log)
        order = scheduler.serialization_order()
        assert order in ([3, 2, 1], [2, 3, 1])


class TestStarvation:
    """Fig. 5 and the III-D-4 remedy."""

    def test_t3_aborts(self, starvation_log):
        scheduler = MTkScheduler(2)
        result = scheduler.run(starvation_log)
        assert result.aborted == {3}

    def test_remedy_seeds_vector(self, starvation_log):
        scheduler = MTkScheduler(2, anti_starvation=True)
        scheduler.run(starvation_log)
        # Just before the abort TS(3) is flushed and seeded to <3, *>.
        assert scheduler.table.vector(3).snapshot() == (3, None)

    def test_restart_succeeds_after_remedy(self, starvation_log):
        scheduler = MTkScheduler(2, anti_starvation=True)
        scheduler.run(starvation_log)
        scheduler.restart(3)
        assert scheduler.process(read(3, "y")).accepted
        assert scheduler.process(write(3, "x")).accepted

    def test_restart_without_remedy_starves_again(self, starvation_log):
        scheduler = MTkScheduler(2)
        scheduler.run(starvation_log)
        scheduler.restart(3)
        scheduler.process(read(3, "y"))
        assert not scheduler.process(write(3, "x")).accepted


class TestThomasWriteRule:
    def test_obsolete_write_ignored(self):
        # T1 writes x, T2 writes x; T3 (ordered between them by an earlier
        # conflict) writes x again: nobody will read it -> ignore.
        scheduler = MTkScheduler(2, thomas_write_rule=True)
        log = Log.parse("R3[y] W1[y] W1[x] W3[x]")
        # R3[y] then W1[y]: T3 -> T1.  W1[x]: WT(x)=1.  W3[x]: TS(3) < TS(1)
        # and RT(x) = T0 < TS(3): Thomas case.
        result = scheduler.run(log)
        assert result.accepted
        assert result.ignored_writes == 1

    def test_write_after_newer_read_still_aborts(self):
        scheduler = MTkScheduler(2, thomas_write_rule=True)
        log = Log.parse("W1[x] W2[x] R3[y] W3[x]")  # RT newer? no: RT(x)=T0
        # Here j = WT(x) = 2 with TS(2) > TS(3); RT(x) is T0 < TS(3):
        # thomas applies.  Build the aborting case: reader above the writer.
        accept = scheduler.run(log)
        assert accept.ignored_writes == 1
        scheduler2 = MTkScheduler(2, thomas_write_rule=True)
        log2 = Log.parse("W1[x] R2[x] R2[y] W3[y] W3[x]")
        # W3[x]: RT(x) = 2 and TS(2) > TS(3) (T2 -> ... no order yet) —
        # depending on encoding; the key assertion: a write below the
        # latest *reader* is never ignored.
        result2 = scheduler2.run(log2)
        assert result2.ignored_writes == 0


class TestReadRules:
    def test_line9_bypass_accepts_read_under_newer_reader(self):
        # At the final R2[x]: RT(x) = T4 with <1,2>, WT(x) = T1 with <1,0>,
        # and TS(2) = <1,1>.  Set(RT, 2) fails (T4 is above T2), but the
        # latest accessor is a *reader* and the writer T1 is below T2, so
        # line 9 accepts the read.
        log = Log.parse("W1[x] R2[w] R4[v] W4[w] R4[x] R2[x]")
        strict = MTkScheduler(2, read_rule="line9")
        none = MTkScheduler(2, read_rule="none")
        assert strict.accepts(log)
        # With lines 9-10 crossed out, the same read aborts T2.
        assert not none.accepts(log)

    def test_line9_bypass_keeps_reader_index(self):
        log = Log.parse("W1[x] R2[w] R4[v] W4[w] R4[x] R2[x]")
        scheduler = MTkScheduler(2, read_rule="line9")
        scheduler.run(log)
        # The bypassed read must NOT replace the most recent reader: T4
        # still holds the largest read timestamp of x.
        assert scheduler.table.rt("x") == 4

    def test_relaxed_rule_accepts_at_least_as_much(self, random_stream):
        logs = random_stream(300, seed=9)
        strict = MTkScheduler(2, read_rule="line9")
        relaxed = MTkScheduler(2, read_rule="relaxed")
        for log in logs:
            if strict.accepts(log):
                assert relaxed.accepts(log)

    def test_invalid_read_rule_rejected(self):
        with pytest.raises(ValueError):
            MTkScheduler(2, read_rule="bogus")


class TestLifecycle:
    def test_virtual_txn_id_rejected(self):
        with pytest.raises(ValueError):
            MTkScheduler(2).process(read(0, "x"))

    def test_aborted_txn_must_restart(self, starvation_log):
        scheduler = MTkScheduler(2)
        scheduler.run(starvation_log)
        with pytest.raises(ValueError):
            scheduler.process(write(3, "x"))
        with pytest.raises(ValueError):
            scheduler.restart(1)  # not aborted

    def test_stats_accounting(self, example2_log):
        scheduler = MTkScheduler(2)
        scheduler.run(example2_log)
        assert scheduler.stats["accepted"] == 5
        assert scheduler.stats["rejected"] == 0
        assert scheduler.stats["set_calls"] == 5

    def test_reset_clears_everything(self, example2_log):
        scheduler = MTkScheduler(2)
        scheduler.run(example2_log)
        scheduler.reset()
        assert scheduler.table.vector(1).is_fresh()
        assert scheduler.stats["accepted"] == 0

    def test_abort_repoints_indices_to_surviving_accessors(self):
        scheduler = MTkScheduler(2)
        assert scheduler.process(read(1, "x")).accepted
        assert scheduler.process(read(2, "x")).accepted  # RT(x) = 2
        assert scheduler.process(write(1, "y")).accepted
        assert scheduler.process(write(2, "y")).accepted
        assert scheduler.process(write(3, "y")).accepted  # WT(y) = 3 above
        # T2 writes y again: TS(3) > TS(2), so T2 aborts.
        assert not scheduler.process(write(2, "y")).accepted
        assert scheduler.aborted == {2}
        # RT(x) must fall back from the aborted T2 to the surviving T1.
        assert scheduler.table.rt("x") == 1
        for item in ("x", "y"):
            assert scheduler.table.rt(item) not in scheduler.aborted
            assert scheduler.table.wt(item) not in scheduler.aborted
